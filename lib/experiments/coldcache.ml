open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_grouping
open Lazyctrl_core
open Lazyctrl_controller
open Lazyctrl_metrics
module Stats = Lazyctrl_util.Stats
module Table = Lazyctrl_util.Table
module Sid = Ids.Switch_id

type result = {
  lazy_intra_ms : float;
  lazy_inter_ms : float;
  openflow_ms : float;
  n_flows : int;
}

let fresh_tenant topo =
  Ids.Tenant_id.of_int
    (1 + List.fold_left
           (fun acc t -> max acc (Ids.Tenant_id.to_int t))
           0
           (Lazyctrl_topo.Topology.tenants topo))

(* Two switches in the same LCG and one in a different LCG. *)
let pick_switches grouping =
  let g0 = Ids.Group_id.of_int 0 in
  match (Grouping.members grouping g0, Grouping.n_groups grouping) with
  | a :: b :: _, n when n >= 2 ->
      let c = List.hd (Grouping.members grouping (Ids.Group_id.of_int 1)) in
      (a, b, c)
  | _ -> failwith "coldcache: need at least two groups of size >= 2"

let mean_of_window recorder ~before =
  let s = Recorder.first_latency_summary recorder in
  let n = Stats.Online.count s and sum = Stats.Online.mean s *. Float.of_int (Stats.Online.count s) in
  let n0, sum0 = before in
  if n = n0 then nan else (sum -. sum0) /. Float.of_int (n - n0)

let snapshot recorder =
  let s = Recorder.first_latency_summary recorder in
  (Stats.Online.count s, Stats.Online.mean s *. Float.of_int (Stats.Online.count s))

(* Launch one fresh flow per ordered pair, 50 ms apart, and return the mean
   first-packet latency over exactly those flows. *)
let measure net pairs ~start =
  let before = snapshot (Network.recorder net) in
  List.iteri
    (fun i ((src : Host.t), (dst : Host.t)) ->
      ignore
        (Engine.schedule_at (Network.engine net)
           ~at:(Time.add start (Time.of_ms (50 * i)))
           (fun () ->
             Network.start_flow net ~src:src.id ~dst:dst.id ~bytes:4000 ~packets:3)))
    pairs;
  Network.run net ~until:(Time.add start (Time.of_sec 30));
  (mean_of_window (Network.recorder net) ~before, List.length pairs)

let ordered_pairs xs ys =
  List.concat_map (fun x -> List.filter_map (fun y -> if x == y then None else Some (x, y)) ys) xs

let deploy net tenant placements =
  let base = Lazyctrl_topo.Topology.n_hosts (Network.topology net) + 1000 in
  List.mapi
    (fun i at ->
      let host = Host.make ~id:(Ids.Host_id.of_int (base + i)) ~tenant in
      Network.deploy_host net host ~at;
      host)
    placements

let lazy_config =
  {
    Controller.default_config with
    Controller.group_size_limit = 24;
    sync_period = Time.of_sec 20;
    keepalive_period = Time.of_sec 10;
    echo_period = Time.of_sec 30;
    echo_timeout = Time.of_min 2;
  }

let run ?(seed = 42) () =
  let topo_lazy = Workloads.sim_topo ~seed:(seed + 1) in
  let net =
    Network.create
      ~params:(Params.with_seed seed Params.default)
      ~controller_config:lazy_config ~mode:Network.Lazy ~topo:topo_lazy
      ~horizon:(Time.of_hour 1) ()
  in
  Network.bootstrap net ();
  Network.run net ~until:(Time.of_min 2);
  let controller = Option.get (Network.lazy_controller net) in
  let grouping = Option.get (Controller.grouping controller) in
  let swa, swb, swc = pick_switches grouping in
  let tenant = fresh_tenant topo_lazy in
  let hosts = deploy net tenant [ swa; swa; swb; swc; swc ] in
  Network.run net ~until:(Time.of_min 3);
  let h1, h2, h3, h4, h5 =
    match hosts with
    | [ a; b; c; d; e ] -> (a, b, c, d, e)
    | _ -> assert false
  in
  let intra_pairs = ordered_pairs [ h1; h2 ] [ h3 ] @ ordered_pairs [ h3 ] [ h1; h2 ] in
  let lazy_intra_ms, n1 = measure net intra_pairs ~start:(Time.of_min 3) in
  let inter_pairs = ordered_pairs [ h1; h2; h3 ] [ h4; h5 ] in
  let lazy_inter_ms, n2 = measure net inter_pairs ~start:(Time.of_min 5) in
  (* Standard OpenFlow, same deployment recipe. *)
  let topo_of = Workloads.sim_topo ~seed:(seed + 2) in
  let net_of =
    Network.create
      ~params:(Params.with_seed seed Params.default)
      ~mode:Network.Openflow ~topo:topo_of ~horizon:(Time.of_hour 1) ()
  in
  Network.run net_of ~until:(Time.of_min 2);
  let of_hosts =
    deploy net_of (fresh_tenant topo_of)
      [ Sid.of_int 0; Sid.of_int 0; Sid.of_int 1; Sid.of_int 2; Sid.of_int 3 ]
  in
  Network.run net_of ~until:(Time.of_min 3);
  (* Distinct unordered pairs only, so every measured flow is cold. *)
  let rec distinct = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ distinct rest
  in
  let all_pairs = distinct of_hosts in
  let openflow_ms, n3 = measure net_of all_pairs ~start:(Time.of_min 3) in
  { lazy_intra_ms; lazy_inter_ms; openflow_ms; n_flows = n1 + n2 + n3 }

let table ?seed () =
  let r = run ?seed () in
  let tbl =
    Table.create [ "Configuration"; "Cold-cache latency (ms)"; "Paper (ms)" ]
  in
  Table.add_row tbl
    [ "LazyCtrl intra-group"; Table.cell_float ~decimals:3 r.lazy_intra_ms; "0.83" ];
  Table.add_row tbl
    [ "LazyCtrl inter-group"; Table.cell_float ~decimals:3 r.lazy_inter_ms; "5.38" ];
  Table.add_row tbl
    [ "OpenFlow"; Table.cell_float ~decimals:3 r.openflow_ms; "15.06" ];
  tbl
