open Lazyctrl_sim
open Lazyctrl_traffic
open Lazyctrl_switch
open Lazyctrl_core
open Lazyctrl_controller
open Lazyctrl_grouping
open Lazyctrl_metrics
module Table = Lazyctrl_util.Table

let short_horizon = Time.of_hour 6

let short_run ~seed ~n_flows ~controller_config ~switch_config =
  let topo = Workloads.sim_topo ~seed in
  let trace = Workloads.sim_trace ~seed ~n_flows in
  let trace = Trace.sub_between trace ~from:Time.zero ~until:short_horizon in
  let params =
    let p = Params.with_seed seed Params.default in
    { p with Params.switch_config }
  in
  let net =
    Network.create ~params ~controller_config ~mode:Network.Lazy ~topo
      ~horizon:short_horizon ()
  in
  let first_hour = Analysis.switch_intensity ~until:(Time.of_hour 1) ~topo trace in
  Network.bootstrap net ~intensity:first_hour ();
  Network.replay net trace;
  Network.run net ~until:short_horizon;
  net

let base_config =
  {
    Controller.default_config with
    Controller.sync_period = Time.of_min 2;
    keepalive_period = Time.of_sec 30;
    echo_period = Time.of_min 1;
    echo_timeout = Time.of_min 3;
  }

let group_size_table ?(seed = 42) ?(n_flows = 40_000)
    ?(limits = [ 4; 8; 16; 24; 34; 68 ]) () =
  let tbl =
    Table.create
      [
        "Size limit";
        "# groups";
        "Controller requests";
        "Intra-group handled";
        "Max G-FIB bytes/switch";
      ]
  in
  List.iter
    (fun limit ->
      let net =
        short_run ~seed ~n_flows
          ~controller_config:{ base_config with Controller.group_size_limit = limit }
          ~switch_config:Edge_switch.default_config
      in
      let controller = Option.get (Network.lazy_controller net) in
      let grouping = Option.get (Controller.grouping controller) in
      let stats = Network.switch_stats_sum net in
      let max_gfib = ref 0 in
      List.iter
        (fun sw ->
          match Network.edge_switch net sw with
          | Some s -> max_gfib := max !max_gfib (Gfib.storage_bytes (Edge_switch.gfib s))
          | None -> ())
        (Lazyctrl_topo.Topology.switches (Network.topology net));
      Table.add_row tbl
        [
          Table.cell_int limit;
          Table.cell_int (Grouping.n_groups grouping);
          Table.cell_int (Recorder.total_requests (Network.recorder net));
          Table.cell_int stats.Edge_switch.gfib_handled;
          Table.cell_int !max_gfib;
        ])
    limits;
  tbl

let negotiation_table () =
  let tbl =
    Table.create
      [
        "Controller ideal (δ)";
        "Switches ideal (δ)";
        "Closed-form limit";
        "Simulated limit";
        "Rounds";
      ]
  in
  List.iter
    (fun ((ci, cd), (si, sd)) ->
      let controller = { Negotiation.ideal = ci; discount = cd } in
      let switches = { Negotiation.ideal = si; discount = sd } in
      let closed = Negotiation.equilibrium_limit ~controller ~switches in
      let sim = Negotiation.simulate ~controller ~switches () in
      Table.add_row tbl
        [
          Printf.sprintf "%d (%.2f)" ci cd;
          Printf.sprintf "%d (%.2f)" si sd;
          Table.cell_int closed;
          Table.cell_int sim.Negotiation.limit;
          Table.cell_int sim.Negotiation.rounds;
        ])
    [
      ((96, 0.9), (16, 0.9));
      ((96, 0.95), (16, 0.8));
      ((96, 0.8), (16, 0.95));
      ((48, 0.9), (24, 0.9));
    ];
  tbl

let preload_table ?(seed = 42) ?(n_flows = 40_000) () =
  let tbl =
    Table.create
      [
        "Preload";
        "Preloaded rules";
        "Controller packet-ins";
        "Grouping updates";
        "Flows delivered";
      ]
  in
  List.iter
    (fun preload ->
      let net =
        short_run ~seed ~n_flows
          ~controller_config:
            {
              base_config with
              Controller.group_size_limit = 14;
              incremental_updates = true;
              preload_on_regroup = preload;
            }
          ~switch_config:Edge_switch.default_config
      in
      let c = Option.get (Network.lazy_controller net) in
      let s = Controller.stats c in
      Table.add_row tbl
        [
          (if preload then "on" else "off");
          Table.cell_int s.Controller.preloaded_rules;
          Table.cell_int s.Controller.packet_ins;
          Table.cell_int s.Controller.grouping_updates;
          Table.cell_int (Host_model.flows_delivered (Network.host_model net));
        ])
    [ true; false ];
  tbl

let exclusion_table ?(seed = 42) ?(n_flows = 150_000)
    ?(fractions = [ 0.0; 0.01; 0.02; 0.05 ]) () =
  let topo = Workloads.paper_topo ~seed in
  let trace = Workloads.real_trace ~seed ~n_flows in
  let tbl =
    Table.create
      [ "Excluded hosts (top fanout)"; "# excluded"; "W_inter (%)" ]
  in
  List.iter
    (fun fraction ->
      let exclude_hosts =
        if Float.equal fraction 0.0 then None
        else Some (Analysis.high_fanout_hosts trace ~fraction)
      in
      let g = Analysis.switch_intensity ?exclude_hosts ~topo trace in
      let grouping =
        Lazyctrl_grouping.Sgi.ini_group
          ~rng:(Lazyctrl_util.Prng.create seed)
          ~limit:48 g
      in
      Table.add_row tbl
        [
          Printf.sprintf "%.0f%%" (100.0 *. fraction);
          Table.cell_int
            (match exclude_hosts with
            | None -> 0
            | Some s -> Lazyctrl_net.Ids.Host_id.Set.cardinal s);
          Table.cell_float
            (100.0 *. Lazyctrl_grouping.Grouping.normalized_inter g grouping);
        ])
    fractions;
  tbl

let batch_table ?(seed = 42) ?(n_flows = 200_000) () =
  let topo = Workloads.paper_topo ~seed in
  let trace = Workloads.real_trace ~seed ~n_flows in
  let g = Analysis.switch_intensity ~topo trace in
  let rng () = Lazyctrl_util.Prng.create (seed + 3) in
  (* A deliberately scrambled start: random round-robin assignment. *)
  let n = Lazyctrl_graph.Wgraph.n_vertices g in
  let scrambled =
    Lazyctrl_grouping.Grouping.of_assignment (Array.init n (fun i -> i mod 6))
  in
  let winter grp = 100.0 *. Lazyctrl_grouping.Grouping.normalized_inter g grp in
  let tbl =
    Table.create [ "Strategy"; "Wall clock (s)"; "W_inter after (%)" ]
  in
  let timed label f =
    let t0 = Sys.time () in
    let result = f () in
    Table.add_row tbl
      [
        label;
        Table.cell_float ~decimals:4 (Sys.time () -. t0);
        Table.cell_float (winter result);
      ]
  in
  let sequential rounds grp =
    let rec go grp i =
      if i = 0 then grp
      else
        match
          Lazyctrl_grouping.Sgi.inc_update ~rng:(rng ()) ~limit:48 ~intensity:g grp
        with
        | Some grp' -> go grp' (i - 1)
        | None -> grp
    in
    go grp rounds
  in
  let batched ~domains rounds grp =
    let rec go grp i =
      if i = 0 then grp
      else
        match
          Lazyctrl_grouping.Sgi.inc_update_batch ~rng:(rng ()) ~limit:48 ~domains
            ~intensity:g grp
        with
        | Some grp' -> go grp' (i - 1)
        | None -> grp
    in
    go grp rounds
  in
  timed "3 sequential IncUpdate rounds" (fun () -> sequential 3 scrambled);
  timed "9 sequential IncUpdate rounds" (fun () -> sequential 9 scrambled);
  timed "3 batched rounds (1 domain)" (fun () -> batched ~domains:1 3 scrambled);
  timed "3 batched rounds (4 domains)" (fun () -> batched ~domains:4 3 scrambled);
  tbl

let bloom_table ?(seed = 42) ?(n_flows = 40_000) ?(bits = [ 2; 4; 8; 16; 32 ]) () =
  let tbl =
    Table.create
      [
        "Bits/entry";
        "G-FIB duplicates";
        "FP drops";
        "Intra-group handled";
        "Max G-FIB bytes/switch";
      ]
  in
  List.iter
    (fun bpe ->
      let net =
        short_run ~seed ~n_flows ~controller_config:base_config
          ~switch_config:
            { Edge_switch.default_config with Edge_switch.gfib_bits_per_entry = bpe }
      in
      let stats = Network.switch_stats_sum net in
      let max_gfib = ref 0 in
      List.iter
        (fun sw ->
          match Network.edge_switch net sw with
          | Some s -> max_gfib := max !max_gfib (Gfib.storage_bytes (Edge_switch.gfib s))
          | None -> ())
        (Lazyctrl_topo.Topology.switches (Network.topology net));
      Table.add_row tbl
        [
          Table.cell_int bpe;
          Table.cell_int stats.Edge_switch.gfib_duplicates;
          Table.cell_int stats.Edge_switch.fp_drops;
          Table.cell_int stats.Edge_switch.gfib_handled;
          Table.cell_int !max_gfib;
        ])
    bits;
  tbl
