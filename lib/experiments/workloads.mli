(** Shared workload construction for the experiment suite.

    Two scales exist, both seeded and deterministic:

    - {e paper scale} — 272 switches / ~6.5k hosts (real trace) and 2721
      switches / ~65k hosts (Syn-A/B/C), used by the grouping experiments
      (Table II, Fig. 6), which only need traces and intensity matrices;
    - {e sim scale} — a 68-switch / ~1.6k-host quarter-size network used
      by the full packet-level simulations (Figs. 7–9, cold-cache), where
      every control message is an event. Flow counts are sampled down
      accordingly; EXPERIMENTS.md records the factors.

    All generators are memoized per seed within a process run. *)

open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_traffic

val paper_topo : seed:int -> Topology.t
(** 272 switches, ~6.5k hosts (Placement.default). *)

val syn_topo : seed:int -> Topology.t
(** The ×10 scale-up topology for Syn-A/B/C. *)

val sim_topo : seed:int -> Topology.t
(** Quarter-scale topology for packet-level runs. *)

val real_trace : seed:int -> n_flows:int -> Trace.t
(** Day-long real-like trace on {!paper_topo}. *)

val sim_trace : seed:int -> n_flows:int -> Trace.t
(** Day-long real-like trace on {!sim_topo}. *)

val sim_trace_expanded : seed:int -> n_flows:int -> Trace.t
(** {!sim_trace} with +30% fresh-pair flows during hours 8–24 (§V-D). *)

val syn_trace : seed:int -> n_flows:int -> p:int -> q:int -> Trace.t
(** Syn trace on {!syn_topo}, payloads resampled from a small base
    real-like trace. *)

val syn_specs : (string * int * int) list
(** [("Syn-A", 90, 10); ("Syn-B", 70, 20); ("Syn-C", 70, 30)]. *)

val horizon : Time.t
(** 24 simulated hours. *)
