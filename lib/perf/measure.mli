(** Fixed-work benchmark measurement over the monotonic {!Clock}.

    Unlike the Bechamel OLS harness (kept for exploratory
    microbenchmarks), this layer runs a fixed workload a fixed number of
    repetitions and reports the fastest one, which is what
    machine-readable regression tracking needs: the same invocation
    does the same work every time. *)

type result = {
  name : string;  (** stable target identifier, e.g. ["engine-event"] *)
  ops_per_sec : float;  (** from the fastest repetition *)
  ns_per_op : float;  (** inverse view of [ops_per_sec] *)
  alloc_bytes_per_op : float;
      (** [Gc.allocated_bytes] delta averaged over all repetitions *)
  minor_words_per_op : float;
      (** [Gc.minor_words] delta averaged over all repetitions — the
          quantity the H00x hot-path budgets (HOTPATH_budget) gate *)
  events_fired : int;  (** engine events the workload fired; 0 if n/a *)
  domains : int;  (** OCaml domains the workload ran on; 1 if serial *)
  scaling_efficiency : float option;
      (** ops/sec relative to [domains] x the single-domain run of the
          same workload — [Some (ops_dN / (N * ops_d1))]; [None] for
          serial targets.  Filled in after measurement via
          {!with_scaling} since it needs the sibling run's result. *)
}

val run :
  name:string ->
  ?warmup:int ->
  ?domains:int ->
  reps:int ->
  ops_per_rep:int ->
  ?events:(unit -> int) ->
  (unit -> unit) ->
  result
(** [run ~name ~reps ~ops_per_rep f] times [reps] calls of [f] (after
    [?warmup] untimed calls, default 1), where one call of [f] performs
    [ops_per_rep] operations of the target primitive.  [?events]
    queries the total engine events fired by the workload, sampled once
    after measurement.  [?domains] (default 1) only annotates the
    result — parallelism is the workload's own business.

    @raise Invalid_argument if [reps] or [ops_per_rep] is not positive. *)

val with_scaling : result -> efficiency:float -> result
(** Attach a {!field-scaling_efficiency} computed against the
    single-domain sibling run. *)

val pp_row : Format.formatter -> result -> unit
(** One aligned human-readable table row (no trailing newline). *)
