(** Bench regression gate: diff two {!Report}s on ops/sec and
    minor-words-per-op.

    A target fails when its current ops/sec is more than [threshold]
    (default 0.15) below baseline, when its minor-words-per-op exceeds
    baseline * (1 + threshold) + {!alloc_slack}, or when it vanished
    from the current run.  Targets new in the current run pass with a
    note. *)

val default_threshold : float

val alloc_slack : float
(** Absolute minor-words-per-op headroom on top of the relative
    threshold, so allocation-free baselines (~0 words/op) tolerate
    measurement noise but still fail on the first real boxed value. *)

val scaling_floor : float
(** Minimum {!Measure.result.scaling_efficiency} for multi-domain
    targets: 0.625, i.e. 2.5x ops/sec at 4 domains.  Gated only when
    the current run's [host_cores] is at least the target's domain
    count — a core-starved runner measures the scheduler, not the
    engine — and skipped rows surface as {!outcome.notes}.  The same
    core-starvation rule exempts those rows from the ops/sec gate
    (their wall clock is scheduler noise); their allocation, which is
    deterministic, still gates. *)

type verdict = Ok_ | Improved | Regressed | New | Missing

type row = {
  name : string;
  baseline_ops : float option;
  current_ops : float option;
  ratio : float option;  (** current / baseline *)
  baseline_words : float option;  (** minor words/op in the baseline *)
  current_words : float option;  (** minor words/op in the current run *)
  domains : int;  (** from the current run when present, else baseline *)
  scaling : float option;  (** current run's scaling_efficiency *)
  verdict : verdict;
}

type outcome = { rows : row list; failures : string list; notes : string list }

val diff :
  ?threshold:float ->
  ?host_cores:int ->
  baseline:Measure.result list ->
  current:Measure.result list ->
  unit ->
  outcome
(** [host_cores] is the {e current} run's machine (see
    {!Report.doc}); omitting it skips the scaling gate with a note per
    multi-domain target.

    @raise Invalid_argument if [threshold] is outside (0,1). *)

val passed : outcome -> bool

val verdict_label : verdict -> string

val pp_row : Format.formatter -> row -> unit

val pp : Format.formatter -> outcome -> unit
(** Full table plus a final PASS/FAIL line. *)
