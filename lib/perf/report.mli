(** Schema-versioned serialization of bench results
    ([BENCH_lazyctrl.json]).

    Schema v1:
    {v
    { "schema_version": 1,
      "suite": "lazyctrl-bench",
      "benchmarks": [
        { "name": "engine-event",
          "ops_per_sec": 1.0e7,
          "ns_per_op": 100.0,
          "alloc_bytes_per_op": 0.0,
          "events_fired": 400000 } ] }
    v}

    Readers reject unknown versions rather than best-effort parsing
    them — the compare gate must never pass on misread numbers. *)

val schema_version : int

val to_string : Measure.result list -> string

val of_string : string -> (Measure.result list, string) result

val load : string -> (Measure.result list, string) result
(** Read and decode a report file; [Error] includes the path. *)

val save : string -> Measure.result list -> unit
