(** Schema-versioned serialization of bench results
    ([BENCH_lazyctrl.json]).

    Schema v3:
    {v
    { "schema_version": 3,
      "suite": "lazyctrl-bench",
      "host_cores": 4,
      "benchmarks": [
        { "name": "engine-event",
          "ops_per_sec": 1.0e7,
          "ns_per_op": 100.0,
          "alloc_bytes_per_op": 0.0,
          "minor_words_per_op": 0.0,
          "events_fired": 400000,
          "domains": 1 },
        { "name": "packet-replay-d4",
          "...": "...",
          "domains": 4,
          "scaling_efficiency": 0.71 } ] }
    v}

    [host_cores] records the machine the run happened on so the
    scaling gate ({!Compare}) can tell a parallelism regression from a
    core-starved runner.  [scaling_efficiency] appears only on
    multi-domain targets.

    Readers reject unknown versions rather than best-effort parsing
    them — the compare gate must never pass on misread numbers. *)

val schema_version : int

type doc = { host_cores : int; results : Measure.result list }

val detected_host_cores : unit -> int
(** [Domain.recommended_domain_count ()] — what {!save} stamps into
    the report when the caller does not override it. *)

val to_string : ?host_cores:int -> Measure.result list -> string
(** [host_cores] defaults to [Domain.recommended_domain_count ()]. *)

val of_string : string -> (Measure.result list, string) result

val doc_of_string : string -> (doc, string) result
(** Like {!of_string} but keeps the top-level [host_cores]. *)

val load : string -> (Measure.result list, string) result
(** Read and decode a report file; [Error] includes the path. *)

val load_doc : string -> (doc, string) result

val save : ?host_cores:int -> string -> Measure.result list -> unit
