(* Minimal JSON for the bench report schema.

   The repo deliberately has no JSON dependency; the lint and bench
   reports are simple enough that a ~100-line recursive-descent parser
   is cheaper than a new package.  Covers the full JSON grammar except
   \u escapes beyond the BMP (the schema never emits non-ASCII). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* %.17g round-trips any double; trim to the shortest that does. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec print buf ~indent ~level v =
  let pad n = String.make (n * indent) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num_to_string f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          print buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          print buf ~indent ~level:(level + 1) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  print buf ~indent ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when Char.equal c c' -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let expect_lit st lit v =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) lit
  then begin
    st.pos <- st.pos + n;
    v
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then
              error st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* ASCII-only schema: encode the code point as Latin-1 when it
               fits, '?' otherwise. *)
            Buffer.add_char buf (if code < 256 then Char.chr code else '?');
            go ()
        | _ -> error st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then error st "expected number";
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> error st (Printf.sprintf "malformed number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          expect st '"';
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' ->
      advance st;
      Str (parse_string_body st)
  | Some 't' -> expect_lit st "true" (Bool true)
  | Some 'f' -> expect_lit st "false" (Bool false)
  | Some 'n' -> expect_lit st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors -------------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None
