(* Regression gate: diff two bench reports on ops/sec and allocation.

   A target regresses when current ops/sec drops more than [threshold]
   (default 15%) below the baseline, or when its minor-words-per-op
   grows past baseline * (1 + threshold) + [alloc_slack] — the absolute
   slack keeps allocation-free targets (baseline ~0 words/op) from
   failing on measurement noise while still catching the first real
   boxed value that appears on such a path.  Targets missing from the
   current run also fail — deleting a benchmark must be an explicit
   baseline refresh, not a silent way to dodge the gate.  New targets
   (present only in the current run) pass with a note; they gate once
   the baseline is refreshed. *)

let default_threshold = 0.15

let alloc_slack = 0.5

(* 2.5x speedup at 4 domains, the acceptance bar for the sharded
   engine, expressed per-domain: 2.5 / 4.  The same floor applies at 2
   domains (1.25x), which the window protocol clears with more room. *)
let scaling_floor = 0.625

type verdict = Ok_ | Improved | Regressed | New | Missing

type row = {
  name : string;
  baseline_ops : float option;
  current_ops : float option;
  ratio : float option;  (** current / baseline *)
  baseline_words : float option;
  current_words : float option;
  domains : int;
  scaling : float option;
  verdict : verdict;
}

type outcome = { rows : row list; failures : string list; notes : string list }

let verdict_label = function
  | Ok_ -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | New -> "new"
  | Missing -> "MISSING"

let find name (results : Measure.result list) =
  List.find_opt (fun (r : Measure.result) -> String.equal r.name name) results

let diff ?(threshold = default_threshold) ?host_cores ~baseline ~current () =
  if threshold <= 0.0 || threshold >= 1.0 then
    invalid_arg "Compare.diff: threshold outside (0,1)";
  let names =
    List.map (fun (r : Measure.result) -> r.name) baseline
    @ List.map (fun (r : Measure.result) -> r.name) current
    |> List.sort_uniq String.compare
  in
  let rows =
    List.map
      (fun name ->
        match (find name baseline, find name current) with
        | Some b, Some c ->
            let ratio = c.Measure.ops_per_sec /. b.Measure.ops_per_sec in
            let alloc_regressed =
              c.Measure.minor_words_per_op
              > (b.Measure.minor_words_per_op *. (1.0 +. threshold))
                +. alloc_slack
            in
            (* A multi-domain target on a host with fewer cores than
               domains times the scheduler, not the code: its wall
               clock is noise, so only its (deterministic) allocation
               gates.  Scaling for such rows is skipped below, with a
               note. *)
            let core_starved =
              c.Measure.domains > 1
              &&
              match host_cores with
              | Some hc -> hc < c.Measure.domains
              | None -> true
            in
            let verdict =
              if (ratio < 1.0 -. threshold && not core_starved)
                 || alloc_regressed
              then Regressed
              else if ratio > 1.0 +. threshold then Improved
              else Ok_
            in
            {
              name;
              baseline_ops = Some b.Measure.ops_per_sec;
              current_ops = Some c.Measure.ops_per_sec;
              ratio = Some ratio;
              baseline_words = Some b.Measure.minor_words_per_op;
              current_words = Some c.Measure.minor_words_per_op;
              domains = c.Measure.domains;
              scaling = c.Measure.scaling_efficiency;
              verdict;
            }
        | Some b, None ->
            {
              name;
              baseline_ops = Some b.Measure.ops_per_sec;
              current_ops = None;
              ratio = None;
              baseline_words = Some b.Measure.minor_words_per_op;
              current_words = None;
              domains = b.Measure.domains;
              scaling = None;
              verdict = Missing;
            }
        | None, Some c ->
            {
              name;
              baseline_ops = None;
              current_ops = Some c.Measure.ops_per_sec;
              ratio = None;
              baseline_words = None;
              current_words = Some c.Measure.minor_words_per_op;
              domains = c.Measure.domains;
              scaling = c.Measure.scaling_efficiency;
              verdict = New;
            }
        | None, None -> assert false)
      names
  in
  let failures =
    List.concat_map
      (fun row ->
        match row.verdict with
        | Regressed ->
            let speed =
              match row.ratio with
              | Some r when r < 1.0 -. threshold ->
                  [
                    Printf.sprintf
                      "%s: %.0f -> %.0f ops/s (%.1f%% of baseline, threshold \
                       %.0f%%)"
                      row.name
                      (Option.value row.baseline_ops ~default:0.0)
                      (Option.value row.current_ops ~default:0.0)
                      (100.0 *. r)
                      (100.0 *. (1.0 -. threshold));
                  ]
              | _ -> []
            in
            let alloc =
              match (row.baseline_words, row.current_words) with
              | Some bw, Some cw
                when cw > (bw *. (1.0 +. threshold)) +. alloc_slack ->
                  [
                    Printf.sprintf
                      "%s: allocation grew %.2f -> %.2f minor words/op \
                       (limit %.2f)"
                      row.name bw cw
                      ((bw *. (1.0 +. threshold)) +. alloc_slack);
                  ]
              | _ -> []
            in
            speed @ alloc
        | Missing ->
            [
              Printf.sprintf
                "%s: present in baseline but absent from the current run"
                row.name;
            ]
        | Ok_ | Improved | New -> [])
      rows
  in
  (* The scaling gate inspects the current run only (including New
     targets — a fresh dN probe must clear the floor before it ever
     reaches a baseline), and only when the host demonstrably has the
     cores to parallelize onto: a 2-core CI runner asked for 4 domains
     measures scheduler contention, not the engine. *)
  let scaling_failures, notes =
    List.fold_left
      (fun (fails, notes) row ->
        if Option.is_none row.current_ops || row.domains < 2 then (fails, notes)
        else
          match host_cores with
          | None ->
              ( fails,
                Printf.sprintf
                  "%s: scaling/throughput gates skipped (current run has no \
                   host_cores)"
                  row.name
                :: notes )
          | Some hc when hc < row.domains ->
              ( fails,
                Printf.sprintf
                  "%s: scaling/throughput gates skipped (host has %d cores < \
                   %d domains)"
                  row.name hc row.domains
                :: notes )
          | Some hc -> (
              match row.scaling with
              | None ->
                  ( Printf.sprintf
                      "%s: %d-domain target carries no scaling_efficiency"
                      row.name row.domains
                    :: fails,
                    notes )
              | Some e when e < scaling_floor ->
                  ( Printf.sprintf
                      "%s: scaling efficiency %.3f below floor %.3f (%d \
                       domains on %d cores)"
                      row.name e scaling_floor row.domains hc
                    :: fails,
                    notes )
              | Some _ -> (fails, notes)))
      ([], []) rows
  in
  { rows; failures = failures @ List.rev scaling_failures; notes = List.rev notes }

let passed outcome = List.is_empty outcome.failures

let pp_row fmt row =
  let opt = function
    | Some v -> Printf.sprintf "%14.0f" v
    | None -> Printf.sprintf "%14s" "-"
  in
  let words = function
    | Some v -> Printf.sprintf "%9.2f" v
    | None -> Printf.sprintf "%9s" "-"
  in
  Format.fprintf fmt "%-16s %s %s  %s %s %s  %s" row.name
    (opt row.baseline_ops) (opt row.current_ops)
    (match row.ratio with
    | Some r -> Printf.sprintf "%+6.1f%%" (100.0 *. (r -. 1.0))
    | None -> "      -")
    (words row.baseline_words) (words row.current_words)
    (verdict_label row.verdict);
  if row.domains > 1 then begin
    Format.fprintf fmt " (%dd" row.domains;
    (match row.scaling with
    | Some e -> Format.fprintf fmt " eff=%.2f" e
    | None -> ());
    Format.fprintf fmt ")"
  end

let pp fmt outcome =
  Format.fprintf fmt "%-16s %14s %14s  %7s %9s %9s  verdict@." "target"
    "baseline op/s" "current op/s" "delta" "base w/op" "cur w/op";
  List.iter (fun row -> Format.fprintf fmt "%a@." pp_row row) outcome.rows;
  List.iter (fun msg -> Format.fprintf fmt "compare: note %s@." msg)
    outcome.notes;
  if passed outcome then Format.fprintf fmt "compare: PASS@."
  else begin
    List.iter
      (fun msg -> Format.fprintf fmt "compare: FAIL %s@." msg)
      outcome.failures
  end
