(** Host monotonic clock — the perf layer's timing sanctuary.

    This is deliberately separate from {!Lazyctrl_sim.Time}: simulated
    time is deterministic and advances only through the engine, while
    this clock measures real elapsed nanoseconds for benchmark reports.
    Nothing outside [lib/perf] (and the bench/test harnesses) may read
    it; the lazyctrl-lint wall-clock rule enforces that, with this
    module carrying the one allowlisted justification. *)

val now_ns : unit -> int
(** Monotonic timestamp in nanoseconds.  Only differences are
    meaningful. *)

val elapsed_ns : since:int -> int
(** [elapsed_ns ~since] is [now_ns () - since]. *)
