(* Schema-versioned bench report (BENCH_lazyctrl.json).

   Version history:
     1 — { schema_version, suite, benchmarks: [ { name, ops_per_sec,
          ns_per_op, alloc_bytes_per_op, events_fired } ] }
     2 — adds minor_words_per_op per benchmark, so the regression gate
          (Compare) and the H00x hot-path budgets (HOTPATH_budget) can
          gate allocation alongside throughput
     3 — adds top-level host_cores (the machine the run happened on)
          and per-benchmark domains / optional scaling_efficiency, so
          the multicore probes (packet-replay-dN) can carry their
          parallel-speedup measurement and Compare can gate it only on
          machines with enough cores for the gate to mean anything

   Readers reject any other version outright: a silent best-effort
   parse of a future schema would turn the regression gate into noise. *)

let schema_version = 3

let suite = "lazyctrl-bench"

type doc = { host_cores : int; results : Measure.result list }

let detected_host_cores () = Domain.recommended_domain_count ()

let to_json ?host_cores (results : Measure.result list) =
  let host_cores =
    match host_cores with Some c -> c | None -> detected_host_cores ()
  in
  Json.Obj
    [
      ("schema_version", Json.Num (float_of_int schema_version));
      ("suite", Json.Str suite);
      ("host_cores", Json.Num (float_of_int host_cores));
      ( "benchmarks",
        Json.List
          (List.map
             (fun (r : Measure.result) ->
               Json.Obj
                 ([
                    ("name", Json.Str r.name);
                    ("ops_per_sec", Json.Num r.ops_per_sec);
                    ("ns_per_op", Json.Num r.ns_per_op);
                    ("alloc_bytes_per_op", Json.Num r.alloc_bytes_per_op);
                    ("minor_words_per_op", Json.Num r.minor_words_per_op);
                    ("events_fired", Json.Num (float_of_int r.events_fired));
                    ("domains", Json.Num (float_of_int r.domains));
                  ]
                 @
                 match r.scaling_efficiency with
                 | Some e -> [ ("scaling_efficiency", Json.Num e) ]
                 | None -> []))
             results) );
    ]

let to_string ?host_cores results = Json.to_string (to_json ?host_cores results)

let ( let* ) = Result.bind

let field_float name obj =
  match Option.bind (Json.member name obj) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" name)

let decode_benchmark obj =
  match Option.bind (Json.member "name" obj) Json.to_str with
  | None -> Error "benchmark entry without a \"name\" string"
  | Some name ->
      let* ops_per_sec = field_float "ops_per_sec" obj in
      let* ns_per_op = field_float "ns_per_op" obj in
      let* alloc_bytes_per_op = field_float "alloc_bytes_per_op" obj in
      let* minor_words_per_op = field_float "minor_words_per_op" obj in
      let* events_fired = field_float "events_fired" obj in
      let* domains = field_float "domains" obj in
      let scaling_efficiency =
        Option.bind (Json.member "scaling_efficiency" obj) Json.to_float
      in
      Ok
        {
          Measure.name;
          ops_per_sec;
          ns_per_op;
          alloc_bytes_per_op;
          minor_words_per_op;
          events_fired = int_of_float events_fired;
          domains = int_of_float domains;
          scaling_efficiency;
        }

let doc_of_json json =
  let* version = field_float "schema_version" json in
  if int_of_float version <> schema_version then
    Error
      (Printf.sprintf "unsupported schema_version %g (this reader knows %d)"
         version schema_version)
  else
    let* host_cores = field_float "host_cores" json in
    match Option.bind (Json.member "benchmarks" json) Json.to_list with
    | None -> Error "missing \"benchmarks\" array"
    | Some entries ->
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            let* r = decode_benchmark entry in
            Ok (r :: acc))
          (Ok []) entries
        |> Result.map (fun rev ->
               { host_cores = int_of_float host_cores; results = List.rev rev })

let doc_of_string s =
  let* json = Json.of_string s in
  doc_of_json json

let of_string s = Result.map (fun d -> d.results) (doc_of_string s)

let load_doc path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (
      match doc_of_string contents with
      | Ok doc -> Ok doc
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg

let load path = Result.map (fun d -> d.results) (load_doc path)

let save ?host_cores path results =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ?host_cores results))
