(* Schema-versioned bench report (BENCH_lazyctrl.json).

   Version history:
     1 — { schema_version, suite, benchmarks: [ { name, ops_per_sec,
          ns_per_op, alloc_bytes_per_op, events_fired } ] }
     2 — adds minor_words_per_op per benchmark, so the regression gate
          (Compare) and the H00x hot-path budgets (HOTPATH_budget) can
          gate allocation alongside throughput

   Readers reject any other version outright: a silent best-effort
   parse of a future schema would turn the regression gate into noise. *)

let schema_version = 2

let suite = "lazyctrl-bench"

let to_json (results : Measure.result list) =
  Json.Obj
    [
      ("schema_version", Json.Num (float_of_int schema_version));
      ("suite", Json.Str suite);
      ( "benchmarks",
        Json.List
          (List.map
             (fun (r : Measure.result) ->
               Json.Obj
                 [
                   ("name", Json.Str r.name);
                   ("ops_per_sec", Json.Num r.ops_per_sec);
                   ("ns_per_op", Json.Num r.ns_per_op);
                   ("alloc_bytes_per_op", Json.Num r.alloc_bytes_per_op);
                   ("minor_words_per_op", Json.Num r.minor_words_per_op);
                   ("events_fired", Json.Num (float_of_int r.events_fired));
                 ])
             results) );
    ]

let to_string results = Json.to_string (to_json results)

let ( let* ) = Result.bind

let field_float name obj =
  match Option.bind (Json.member name obj) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" name)

let decode_benchmark obj =
  match Option.bind (Json.member "name" obj) Json.to_str with
  | None -> Error "benchmark entry without a \"name\" string"
  | Some name ->
      let* ops_per_sec = field_float "ops_per_sec" obj in
      let* ns_per_op = field_float "ns_per_op" obj in
      let* alloc_bytes_per_op = field_float "alloc_bytes_per_op" obj in
      let* minor_words_per_op = field_float "minor_words_per_op" obj in
      let* events_fired = field_float "events_fired" obj in
      Ok
        {
          Measure.name;
          ops_per_sec;
          ns_per_op;
          alloc_bytes_per_op;
          minor_words_per_op;
          events_fired = int_of_float events_fired;
        }

let of_json json =
  let* version = field_float "schema_version" json in
  if int_of_float version <> schema_version then
    Error
      (Printf.sprintf "unsupported schema_version %g (this reader knows %d)"
         version schema_version)
  else
    match Option.bind (Json.member "benchmarks" json) Json.to_list with
    | None -> Error "missing \"benchmarks\" array"
    | Some entries ->
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            let* r = decode_benchmark entry in
            Ok (r :: acc))
          (Ok []) entries
        |> Result.map List.rev

let of_string s =
  let* json = Json.of_string s in
  of_json json

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (
      match of_string contents with
      | Ok results -> Ok results
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg

let save path results =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string results))
