(* The one sanctioned timing sanctuary outside lib/sim/time.ml.

   Benchmark measurement needs real elapsed time, which is exactly what
   the determinism rules ban everywhere else: simulated state must never
   depend on the host clock.  This module is therefore the single place
   the perf layer reads hardware time, it is allowlisted as such in
   .lazyctrl-lint-allow, and nothing under lib/ outside lib/perf may
   call it.  The measurements flow one way — out of the process into
   reports — never back into simulation state.

   CLOCK_MONOTONIC (via bechamel's stub) rather than gettimeofday: bench
   intervals must not jump when NTP slews the wall clock. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let elapsed_ns ~since = now_ns () - since
