(* Fixed-work benchmark measurement.

   Bechamel's OLS harness is great for statistical microbenchmarks but
   its adaptive iteration counts make run-to-run comparison noisy and
   its results awkward to serialize.  Regression tracking wants the
   opposite trade-off: a fixed amount of work, repeated a fixed number
   of times, timed with the monotonic clock, with the best repetition
   reported (the minimum is the standard robust estimator for "how fast
   can this go" — outliers from preemption only ever slow a run down). *)

type result = {
  name : string;
  ops_per_sec : float;
  ns_per_op : float;
  alloc_bytes_per_op : float;
  minor_words_per_op : float;
  events_fired : int;
  domains : int;
  scaling_efficiency : float option;
}

let run ~name ?(warmup = 1) ?(domains = 1) ~reps ~ops_per_rep
    ?(events = fun () -> 0) f =
  if reps <= 0 then invalid_arg "Measure.run: reps must be positive";
  if ops_per_rep <= 0 then invalid_arg "Measure.run: ops_per_rep must be positive";
  for _ = 1 to warmup do
    f ()
  done;
  let best_ns = ref max_int in
  let total_alloc = ref 0.0 in
  let total_minor = ref 0.0 in
  for _ = 1 to reps do
    let a0 = Gc.allocated_bytes () in
    let m0 = Gc.minor_words () in
    let t0 = Clock.now_ns () in
    f ();
    let dt = Clock.elapsed_ns ~since:t0 in
    let dm = Gc.minor_words () -. m0 in
    let da = Gc.allocated_bytes () -. a0 in
    if dt < !best_ns then best_ns := dt;
    total_alloc := !total_alloc +. da;
    total_minor := !total_minor +. dm
  done;
  (* Clamp to 1ns: a sub-tick measurement must not divide by zero. *)
  let best_ns = float_of_int (max 1 !best_ns) in
  let ops = float_of_int ops_per_rep in
  let reps_f = float_of_int reps in
  {
    name;
    ops_per_sec = ops /. (best_ns /. 1e9);
    ns_per_op = best_ns /. ops;
    (* Allocation is averaged over every repetition, not the fastest
       one: bytes are deterministic per repetition, so the average is
       exact and unaffected by timer noise. *)
    alloc_bytes_per_op = !total_alloc /. reps_f /. ops;
    (* Minor words are what the H00x hot-path budget gates: the direct
       count of minor-heap allocation, in words, the unit Gc reports
       natively (alloc_bytes also folds in major allocation). *)
    minor_words_per_op = !total_minor /. reps_f /. ops;
    events_fired = events ();
    domains;
    scaling_efficiency = None;
  }

let with_scaling r ~efficiency = { r with scaling_efficiency = Some efficiency }

let pp_row fmt r =
  Format.fprintf fmt "%-16s %12.0f ops/s %10.1f ns/op %10.1f B/op %9.2f w/op"
    r.name r.ops_per_sec r.ns_per_op r.alloc_bytes_per_op
    r.minor_words_per_op;
  if r.events_fired > 0 then Format.fprintf fmt " %10d events" r.events_fired;
  if r.domains > 1 then Format.fprintf fmt " %3dd" r.domains;
  match r.scaling_efficiency with
  | Some e -> Format.fprintf fmt " eff=%.2f" e
  | None -> ()
