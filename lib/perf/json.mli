(** Minimal JSON values, printing and parsing, for the bench report
    schema ({!Report}).  Full grammar minus astral-plane \u escapes —
    the schema is ASCII. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Pretty-print with a trailing newline; [indent] defaults to 2. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; [Error] carries a message with an offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
