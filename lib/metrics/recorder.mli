(** Measurement taps for the paper's evaluation series.

    One recorder per simulation run collects: the controller-workload time
    series (Fig. 7: requests per second, bucketed per 2 simulated hours),
    the forwarding-latency series (Fig. 9: average over all processed
    packets per bucket), grouping-update counts per hour (Fig. 8), and
    cold-cache first-packet samples (§V-E). *)

open Lazyctrl_sim

type t

val create : Engine.t -> horizon:Time.t -> ?bucket:Time.t -> unit -> t
(** Default bucket: 2 h, as in Figs. 7 and 9. Updates are always bucketed
    hourly (Fig. 8). *)

val on_controller_request : t -> unit
val on_grouping_update : t -> unit

val on_control_bytes : t -> int -> unit
(** Charge [n] bytes of control-channel load to the current bucket.  Fed
    by {!Lazyctrl_openflow.Channel.set_wire_hook} on the
    controller-facing channels, one call per encoded send, so
    {!total_ctrl_bytes} equals the sum of those channels' [bytes_sent]
    counters exactly (DESIGN.md §13). *)

val record_first_packet_latency : t -> Time.t -> unit
(** First packet of a flow, end-to-end host-to-host. *)

val record_fast_path_latency : t -> n:int -> Time.t -> unit
(** [n] subsequent packets of a flow taking the data-plane fast path (they
    are accounted in bulk, not individually simulated).  All [n] packets
    are attributed to the bucket containing the current engine time — the
    flow's first-delivery time — even when the flow's lifetime straddles a
    bucket boundary; times past the horizon clamp into the final bucket.
    Pinned by the bulk-accounting cases in [test/test_metrics.ml]. *)

val workload_rps : t -> float array
(** Requests per second of simulated time, per bucket. *)

val ctrl_bytes_per_sec : t -> float array
(** Control-channel load in bytes per second of simulated time, per
    bucket — the real-units recast of the Fig. 7 series. *)

val total_ctrl_bytes : t -> int
(** Cumulative control-channel bytes across the whole run. *)

val latency_ms_series : t -> float array
(** Mean forwarding latency (ms) over all packets, per bucket. *)

val first_latency_ms_series : t -> float array
(** Mean first-packet latency (ms), per bucket. *)

val updates_per_hour : t -> int array

val total_requests : t -> int
val total_updates : t -> int

val first_latency_summary : t -> Lazyctrl_util.Stats.Online.t
val bucket_label : t -> int -> string
(** ["0-2"], ["2-4"], … in hours. *)

val n_buckets : t -> int
