open Lazyctrl_sim
module Stats = Lazyctrl_util.Stats

type t = {
  engine : Engine.t;
  bucket : Time.t;
  workload : Stats.Timeseries.t;
  ctrl_bytes : Stats.Timeseries.t;    (* control-channel bytes *)
  latency : Stats.Timeseries.t;       (* all packets, ms *)
  first_latency : Stats.Timeseries.t; (* first packets only, ms *)
  updates : Stats.Timeseries.t;       (* hourly *)
  first_summary : Stats.Online.t;
  mutable requests : int;
  mutable update_count : int;
  mutable ctrl_bytes_total : int;
}

let create engine ~horizon ?(bucket = Time.of_hour 2) () =
  let n_buckets =
    max 1 ((Time.to_ns horizon + Time.to_ns bucket - 1) / Time.to_ns bucket)
  in
  let hours =
    max 1
      ((Time.to_ns horizon + Time.to_ns (Time.of_hour 1) - 1)
      / Time.to_ns (Time.of_hour 1))
  in
  let series () =
    Stats.Timeseries.create ~bucket_width:(Time.to_float_sec bucket) ~n_buckets
  in
  {
    engine;
    bucket;
    workload = series ();
    ctrl_bytes = series ();
    latency = series ();
    first_latency = series ();
    updates =
      Stats.Timeseries.create
        ~bucket_width:(Time.to_float_sec (Time.of_hour 1))
        ~n_buckets:hours;
    first_summary = Stats.Online.create ();
    requests = 0;
    update_count = 0;
    ctrl_bytes_total = 0;
  }

let now_s t = Time.to_float_sec (Engine.now t.engine)

let on_controller_request t =
  t.requests <- t.requests + 1;
  Stats.Timeseries.record t.workload ~time:(now_s t) 1.0

let on_control_bytes t n =
  t.ctrl_bytes_total <- t.ctrl_bytes_total + n;
  Stats.Timeseries.record t.ctrl_bytes ~time:(now_s t) (Float.of_int n)

let on_grouping_update t =
  t.update_count <- t.update_count + 1;
  Stats.Timeseries.record t.updates ~time:(now_s t) 1.0

let record_first_packet_latency t lat =
  let ms = Time.to_float_ms lat in
  Stats.Timeseries.record t.latency ~time:(now_s t) ms;
  Stats.Timeseries.record t.first_latency ~time:(now_s t) ms;
  Stats.Online.add t.first_summary ms

let record_fast_path_latency t ~n lat =
  Stats.Timeseries.record_n t.latency ~time:(now_s t) ~n (Time.to_float_ms lat)

let workload_rps t = Stats.Timeseries.rates t.workload

(* [rates] divides message *counts* by the width; bytes need the bucket
   *sums* divided by the width. *)
let ctrl_bytes_per_sec t =
  let w = Time.to_float_sec t.bucket in
  Array.map (fun s -> s /. w) (Stats.Timeseries.sums t.ctrl_bytes)

let total_ctrl_bytes t = t.ctrl_bytes_total
let latency_ms_series t = Stats.Timeseries.means t.latency
let first_latency_ms_series t = Stats.Timeseries.means t.first_latency

let updates_per_hour t = Stats.Timeseries.counts t.updates

let total_requests t = t.requests
let total_updates t = t.update_count
let first_latency_summary t = t.first_summary

let bucket_label t i =
  let h = Time.to_ns t.bucket / Time.to_ns (Time.of_hour 1) in
  Printf.sprintf "%d-%d" (i * h) ((i + 1) * h)

let n_buckets t = Array.length (Stats.Timeseries.counts t.workload)
