module Time = Lazyctrl_sim.Time

type span = { at : Time.t; sn : int }

let span_compare a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.sn b.sn

let span_equal a b = span_compare a b = 0

type regroup = { full : bool; groups : int }
type chaos = { fault : string; phase : string }

type kind =
  | Ingress
  | Flow_table_hit
  | Lfib_hit
  | Gfib_probe of int
  | Bloom_fp
  | Punt of string
  | Deliver
  | Arp_local
  | Arp_group
  | Arp_escalate
  | Designated_relay of string
  | Ctrl_request of string
  | Ctrl_packet_in
  | Ctrl_install of int
  | Ctrl_arp_relay
  | Ctrl_flood
  | Regroup of regroup
  | Chaos_fault of chaos
  | Failover of string
  | Retransmit of string
  | Reliable_giveup of string

type t = {
  time : Time.t;
  seq : int;
  flow : int option;
  switch : int option;
  parent : span option;
  kind : kind;
}

let span_of e = { at = e.time; sn = e.seq }

let tag = function
  | Ingress -> 0
  | Flow_table_hit -> 1
  | Lfib_hit -> 2
  | Gfib_probe _ -> 3
  | Bloom_fp -> 4
  | Punt _ -> 5
  | Deliver -> 6
  | Arp_local -> 7
  | Arp_group -> 8
  | Arp_escalate -> 9
  | Designated_relay _ -> 10
  | Ctrl_request _ -> 11
  | Ctrl_packet_in -> 12
  | Ctrl_install _ -> 13
  | Ctrl_arp_relay -> 14
  | Ctrl_flood -> 15
  | Regroup _ -> 16
  | Chaos_fault _ -> 17
  | Failover _ -> 18
  | Retransmit _ -> 19
  | Reliable_giveup _ -> 20

let n_tags = 21

let tag_label = function
  | 0 -> "ingress"
  | 1 -> "flow_table_hit"
  | 2 -> "lfib_hit"
  | 3 -> "gfib_probe"
  | 4 -> "bloom_fp"
  | 5 -> "punt"
  | 6 -> "deliver"
  | 7 -> "arp_local"
  | 8 -> "arp_group"
  | 9 -> "arp_escalate"
  | 10 -> "designated_relay"
  | 11 -> "ctrl_request"
  | 12 -> "ctrl_packet_in"
  | 13 -> "ctrl_install"
  | 14 -> "ctrl_arp_relay"
  | 15 -> "ctrl_flood"
  | 16 -> "regroup"
  | 17 -> "chaos_fault"
  | 18 -> "failover"
  | 19 -> "retransmit"
  | 20 -> "reliable_giveup"
  | n -> invalid_arg (Printf.sprintf "Event.tag_label: %d" n)

let kind_label k = tag_label (tag k)

let kind_equal a b =
  match (a, b) with
  | Ingress, Ingress
  | Flow_table_hit, Flow_table_hit
  | Lfib_hit, Lfib_hit
  | Bloom_fp, Bloom_fp
  | Deliver, Deliver
  | Arp_local, Arp_local
  | Arp_group, Arp_group
  | Arp_escalate, Arp_escalate
  | Ctrl_packet_in, Ctrl_packet_in
  | Ctrl_arp_relay, Ctrl_arp_relay
  | Ctrl_flood, Ctrl_flood ->
      true
  | Gfib_probe a, Gfib_probe b | Ctrl_install a, Ctrl_install b ->
      Int.equal a b
  | Punt a, Punt b
  | Designated_relay a, Designated_relay b
  | Ctrl_request a, Ctrl_request b
  | Failover a, Failover b
  | Retransmit a, Retransmit b
  | Reliable_giveup a, Reliable_giveup b ->
      String.equal a b
  | Regroup a, Regroup b ->
      Bool.equal a.full b.full && Int.equal a.groups b.groups
  | Chaos_fault a, Chaos_fault b ->
      String.equal a.fault b.fault && String.equal a.phase b.phase
  | _ -> false

let equal a b =
  Time.equal a.time b.time && Int.equal a.seq b.seq
  && Option.equal Int.equal a.flow b.flow
  && Option.equal Int.equal a.switch b.switch
  && Option.equal span_equal a.parent b.parent
  && kind_equal a.kind b.kind

let compare a b = span_compare (span_of a) (span_of b)

(* --- JSON ------------------------------------------------------------------ *)

let args_of_kind = function
  | Ingress | Flow_table_hit | Lfib_hit | Bloom_fp | Deliver | Arp_local
  | Arp_group | Arp_escalate | Ctrl_packet_in | Ctrl_arp_relay | Ctrl_flood ->
      []
  | Gfib_probe n -> [ ("matches", Tjson.Int n) ]
  | Punt reason -> [ ("reason", Tjson.String reason) ]
  | Designated_relay what -> [ ("what", Tjson.String what) ]
  | Ctrl_request req -> [ ("req", Tjson.String req) ]
  | Ctrl_install target -> [ ("target", Tjson.Int target) ]
  | Regroup r ->
      [ ("full", Tjson.Bool r.full); ("groups", Tjson.Int r.groups) ]
  | Chaos_fault c ->
      [ ("fault", Tjson.String c.fault); ("phase", Tjson.String c.phase) ]
  | Failover verdict -> [ ("verdict", Tjson.String verdict) ]
  | Retransmit session -> [ ("session", Tjson.String session) ]
  | Reliable_giveup session -> [ ("session", Tjson.String session) ]

let to_json e =
  let opt_int = function None -> Tjson.Null | Some n -> Tjson.Int n in
  let parent =
    match e.parent with
    | None -> Tjson.Null
    | Some s -> Tjson.List [ Tjson.Int (Time.to_ns s.at); Tjson.Int s.sn ]
  in
  Tjson.Obj
    ([
       ("ts", Tjson.Int (Time.to_ns e.time));
       ("seq", Tjson.Int e.seq);
       ("flow", opt_int e.flow);
       ("sw", opt_int e.switch);
       ("parent", parent);
       ("kind", Tjson.String (kind_label e.kind));
     ]
    @ args_of_kind e.kind)

let ( let* ) r f = Result.bind r f

let field name j =
  match Tjson.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  let* v = field name j in
  Tjson.to_int v

let str_field name j =
  let* v = field name j in
  Tjson.to_str v

let opt_int_field name j =
  let* v = field name j in
  match v with
  | Tjson.Null -> Ok None
  | Tjson.Int n -> Ok (Some n)
  | _ -> Error (Printf.sprintf "field %S: expected integer or null" name)

let kind_of_json j =
  let* label = str_field "kind" j in
  match label with
  | "ingress" -> Ok Ingress
  | "flow_table_hit" -> Ok Flow_table_hit
  | "lfib_hit" -> Ok Lfib_hit
  | "gfib_probe" ->
      let* n = int_field "matches" j in
      Ok (Gfib_probe n)
  | "bloom_fp" -> Ok Bloom_fp
  | "punt" ->
      let* reason = str_field "reason" j in
      Ok (Punt reason)
  | "deliver" -> Ok Deliver
  | "arp_local" -> Ok Arp_local
  | "arp_group" -> Ok Arp_group
  | "arp_escalate" -> Ok Arp_escalate
  | "designated_relay" ->
      let* what = str_field "what" j in
      Ok (Designated_relay what)
  | "ctrl_request" ->
      let* req = str_field "req" j in
      Ok (Ctrl_request req)
  | "ctrl_packet_in" -> Ok Ctrl_packet_in
  | "ctrl_install" ->
      let* target = int_field "target" j in
      Ok (Ctrl_install target)
  | "ctrl_arp_relay" -> Ok Ctrl_arp_relay
  | "ctrl_flood" -> Ok Ctrl_flood
  | "regroup" ->
      let* full = field "full" j in
      let* full = Tjson.to_bool full in
      let* groups = int_field "groups" j in
      Ok (Regroup { full; groups })
  | "chaos_fault" ->
      let* fault = str_field "fault" j in
      let* phase = str_field "phase" j in
      Ok (Chaos_fault { fault; phase })
  | "failover" ->
      let* verdict = str_field "verdict" j in
      Ok (Failover verdict)
  | "retransmit" ->
      let* session = str_field "session" j in
      Ok (Retransmit session)
  | "reliable_giveup" ->
      let* session = str_field "session" j in
      Ok (Reliable_giveup session)
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let of_json j =
  let* ts = int_field "ts" j in
  let* seq = int_field "seq" j in
  let* flow = opt_int_field "flow" j in
  let* switch = opt_int_field "sw" j in
  let* parent =
    let* v = field "parent" j in
    match v with
    | Tjson.Null -> Ok None
    | Tjson.List [ Tjson.Int at; Tjson.Int sn ] ->
        Ok (Some { at = Time.of_ns at; sn })
    | _ -> Error "field \"parent\": expected null or [ts, seq]"
  in
  let* kind = kind_of_json j in
  Ok { time = Time.of_ns ts; seq; flow; switch; parent; kind }

let pp ppf e =
  let pp_opt name ppf = function
    | None -> ()
    | Some n -> Format.fprintf ppf " %s=%d" name n
  in
  let pp_args ppf args =
    List.iter
      (fun (k, v) ->
        match v with
        | Tjson.Int n -> Format.fprintf ppf " %s=%d" k n
        | Tjson.String s -> Format.fprintf ppf " %s=%s" k s
        | Tjson.Bool b -> Format.fprintf ppf " %s=%b" k b
        | _ -> ())
      args
  in
  Format.fprintf ppf "@[%a #%d %s%a%a%a%a@]" Time.pp e.time e.seq
    (kind_label e.kind) (pp_opt "flow") e.flow (pp_opt "sw") e.switch pp_args
    (args_of_kind e.kind)
    (fun ppf -> function
      | None -> ()
      | Some s -> Format.fprintf ppf " <- #%d@%dns" s.sn (Time.to_ns s.at))
    e.parent
