module Time = Lazyctrl_sim.Time
module Packet = Lazyctrl_net.Packet
module Det = Lazyctrl_util.Det

type t = {
  on : bool;
  sample_every : int;
  capacity : int;
  ring : Event.t option array;
  mutable pushed : int;  (* events ever stored in the ring *)
  mutable seq : int;  (* next span sequence number *)
  counts : int array;  (* cumulative, indexed by Event.tag *)
  last_span : (int, Event.span) Hashtbl.t;  (* flow -> last span *)
  flow_ranks : (int, int) Hashtbl.t;  (* flow -> verdict rank *)
  mutable ctrl_bytes : int;  (* control-channel bytes, never sampled *)
}

let disabled =
  {
    on = false;
    sample_every = 1;
    capacity = 0;
    ring = [||];
    pushed = 0;
    seq = 0;
    counts = [||];
    last_span = Hashtbl.create 1;
    flow_ranks = Hashtbl.create 1;
    ctrl_bytes = 0;
  }

let create ?(sample_every = 1) ?(capacity = 262_144) () =
  if sample_every < 1 then invalid_arg "Tracer.create: sample_every < 1";
  if capacity < 1 then invalid_arg "Tracer.create: capacity < 1";
  {
    on = true;
    sample_every;
    capacity;
    ring = Array.make capacity None;
    pushed = 0;
    seq = 0;
    counts = Array.make Event.n_tags 0;
    last_span = Hashtbl.create 4096;
    flow_ranks = Hashtbl.create 4096;
    ctrl_bytes = 0;
  }

let enabled t = t.on

(* Byte accounting is a plain accumulator, not an event: wire-hook
   frequency (one call per encoded control message) would swamp the ring,
   and the cross-check against the channel counters needs totals exempt
   from sampling and eviction. The [t.on] guard keeps the shared
   [disabled] value immutable. *)
let add_ctrl_bytes t n = if t.on then t.ctrl_bytes <- t.ctrl_bytes + n
let ctrl_bytes t = t.ctrl_bytes

let sampled t flow = t.sample_every <= 1 || flow mod t.sample_every = 0

let emit t ~now ?flow ?switch kind =
  if t.on then
    let keep = match flow with Some f -> sampled t f | None -> true in
    if keep then begin
      let seq = t.seq in
      t.seq <- seq + 1;
      let tag = Event.tag kind in
      t.counts.(tag) <- t.counts.(tag) + 1;
      let parent =
        match flow with
        | Some f -> Hashtbl.find_opt t.last_span f
        | None -> None
      in
      let ev = { Event.time = now; seq; flow; switch; parent; kind } in
      (match flow with
      | None -> ()
      | Some f ->
          Hashtbl.replace t.last_span f (Event.span_of ev);
          let r = Laziness.rank_of_kind kind in
          (match Hashtbl.find_opt t.flow_ranks f with
          | Some r0 when r0 >= r -> ()
          | _ -> Hashtbl.replace t.flow_ranks f r));
      t.ring.(t.pushed mod t.capacity) <- Some ev;
      t.pushed <- t.pushed + 1
    end

let flow_of_packet p =
  match (Packet.eth_of p).Packet.payload with
  | Packet.Ipv4 ip -> Some (ip.Packet.src_port lor (ip.Packet.dst_port lsl 16))
  | Packet.Arp _ -> None

let events t =
  if t.capacity = 0 then []
  else
    let len = if t.pushed < t.capacity then t.pushed else t.capacity in
    let start = t.pushed - len in
    List.init len (fun i ->
        match t.ring.((start + i) mod t.capacity) with
        | Some e -> e
        | None -> assert false)

let recorded t = t.seq

let dropped t = if t.pushed > t.capacity then t.pushed - t.capacity else 0

let counts t =
  List.filter_map
    (fun tag ->
      if t.on && t.counts.(tag) > 0 then
        Some (Event.tag_label tag, t.counts.(tag))
      else None)
    (List.init Event.n_tags Fun.id)

let controller_requests t =
  if t.on then t.counts.(Event.tag (Event.Ctrl_request "")) else 0

let summary t =
  let per_flow =
    List.map
      (fun (f, r) -> (f, Laziness.verdict_of_rank r))
      (Det.bindings_sorted ~cmp:Int.compare t.flow_ranks)
  in
  Laziness.summary_of_verdicts
    ~controller_requests:(controller_requests t)
    ~events:t.seq per_flow
