(** Trace serialization: JSONL and Chrome [trace_event] formats.

    JSONL is the canonical format — one event object per line, integer
    timestamps in nanoseconds, deterministic field order, so two runs
    with the same seed produce byte-identical files.

    The Chrome format ([{"traceEvents": [...]}]) is loadable in
    Perfetto / [chrome://tracing]: each event becomes an instant event
    whose track ([pid]/[tid]) is the switch it happened on (the
    controller gets its own process row), with the display timestamp in
    microseconds.  The full canonical event object rides along under
    [args.ev], so decoding is lossless despite the coarser display
    timestamp. *)

val to_jsonl : Event.t list -> string
(** One event per line, each terminated by ['\n']. *)

val of_jsonl : string -> (Event.t list, string) result
(** Blank lines are skipped; the error names the offending line. *)

val to_chrome : Event.t list -> string

val of_chrome : string -> (Event.t list, string) result
(** Inverse of {!to_chrome} (reads [args.ev] of each trace event). *)

val save : string -> string -> unit
(** [save path data] writes [data] to [path] (binary mode). *)

val load : string -> (string, string) result
(** File contents, or a readable error message. *)
