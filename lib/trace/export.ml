module Time = Lazyctrl_sim.Time

(* --- JSONL ----------------------------------------------------------------- *)

let to_jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Tjson.to_buffer buf (Event.to_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let of_jsonl data =
  let lines = String.split_on_char '\n' data in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest when String.length (String.trim line) = 0 ->
        go acc (lineno + 1) rest
    | line :: rest -> (
        match Result.bind (Tjson.of_string line) Event.of_json with
        | Ok e -> go (e :: acc) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go [] 1 lines

(* --- Chrome trace_event ---------------------------------------------------- *)

(* Process rows in the Perfetto UI: switches under pid 1 (one thread row
   per switch), the controller under pid 2. *)
let chrome_of_event (e : Event.t) =
  let pid, tid =
    match e.Event.switch with Some sw -> (1, sw) | None -> (2, 0)
  in
  Tjson.Obj
    [
      ("name", Tjson.String (Event.kind_label e.Event.kind));
      ("cat", Tjson.String "lazyctrl");
      ("ph", Tjson.String "i");
      ("ts", Tjson.Int (Time.to_ns e.Event.time / 1_000));
      ("pid", Tjson.Int pid);
      ("tid", Tjson.Int tid);
      ("s", Tjson.String "t");
      ("args", Tjson.Obj [ ("ev", Event.to_json e) ]);
    ]

let to_chrome events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Tjson.to_buffer buf (chrome_of_event e))
    events;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let of_chrome data =
  match Tjson.of_string data with
  | Error msg -> Error msg
  | Ok j -> (
      match Tjson.member "traceEvents" j with
      | Some (Tjson.List items) ->
          let rec go acc i = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
                let ev =
                  match Tjson.member "args" item with
                  | Some args -> (
                      match Tjson.member "ev" args with
                      | Some ev -> Event.of_json ev
                      | None -> Error "missing args.ev")
                  | None -> Error "missing args"
                in
                match ev with
                | Ok e -> go (e :: acc) (i + 1) rest
                | Error msg ->
                    Error (Printf.sprintf "traceEvents[%d]: %s" i msg))
          in
          go [] 0 items
      | Some _ -> Error "traceEvents is not a list"
      | None -> Error "missing traceEvents field")

(* --- files ----------------------------------------------------------------- *)

let save path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          Ok (really_input_string ic n))
