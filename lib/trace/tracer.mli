(** The flight recorder: a deterministic, bounded event sink.

    A tracer is threaded (optionally) through every simulated component.
    The disabled singleton {!disabled} is the default everywhere, and
    instrumentation sites guard with {!enabled} before building event
    payloads, so a run without tracing pays one load-and-branch per
    decision point — the overhead budget is checked by the
    [trace-overhead] bench target.

    Determinism: span ids are [(sim-time, per-tracer sequence number)];
    no wall clock, no randomness, no hash-order dependence (cross-flow
    state lives in hash tables but is only ever read per-key or via
    {!Lazyctrl_util.Det} sorted traversal).

    Boundedness: recorded events live in a ring buffer of [capacity]
    events; old events are evicted, but per-kind counters and per-flow
    verdicts are cumulative, so {!summary} is exact even after eviction.

    Sampling: when [sample_every = n > 1], only flows whose id is
    divisible by [n] are recorded; events not tied to a flow are always
    recorded.  Sampling is by flow id — deterministic, not random — so
    the same flows are kept across runs. *)

type t

val disabled : t
(** The shared no-op tracer: {!enabled} is [false] and {!emit} returns
    immediately. *)

val create : ?sample_every:int -> ?capacity:int -> unit -> t
(** An enabled tracer.  [sample_every] defaults to [1] (record every
    flow); [capacity] defaults to [262144] events.
    @raise Invalid_argument if [sample_every < 1] or [capacity < 1]. *)

val enabled : t -> bool
(** Guard for instrumentation sites: check this before allocating event
    payloads so disabled tracing stays near-free. *)

val sampled : t -> int -> bool
(** Whether events for this flow id are recorded. *)

val emit :
  t -> now:Lazyctrl_sim.Time.t -> ?flow:int -> ?switch:int ->
  Event.kind -> unit
(** Record one event.  No-op when disabled or when [flow] is sampled
    out.  The event's [parent] is the span of the previous event
    recorded for the same flow, forming the causal chain. *)

val flow_of_packet : Lazyctrl_net.Packet.t -> int option
(** Flow id of a data frame — [src_port lor (dst_port lsl 16)], the same
    encoding the host model uses — or [None] for ARP. *)

val events : t -> Event.t list
(** Buffered events, oldest first (at most [capacity]). *)

val recorded : t -> int
(** Cumulative events recorded, including evicted ones. *)

val dropped : t -> int
(** Events evicted from the ring so far. *)

val counts : t -> (string * int) list
(** Cumulative per-kind counters [(kind label, count)], in tag order,
    zero entries omitted. *)

val controller_requests : t -> int
(** Cumulative [Ctrl_request] events; with sampling off this equals the
    recorder's total controller request count — the Fig. 7 cross-check. *)

val add_ctrl_bytes : t -> int -> unit
(** Charge [n] bytes of control-channel load (fed by
    {!Lazyctrl_openflow.Channel.set_wire_hook}, one call per encoded
    send).  A running accumulator rather than ring events: byte totals
    are exempt from sampling and eviction, so {!ctrl_bytes} always equals
    the sum of the channels' own byte counters exactly (DESIGN.md §13's
    cross-check).  No-op when disabled. *)

val ctrl_bytes : t -> int
(** Cumulative control-channel bytes charged so far (0 when disabled). *)

val summary : t -> Laziness.summary
(** Laziness accounting from the cumulative per-flow state (exact even
    after ring eviction). *)
