(** Minimal JSON tree for trace export.

    The trace layer sits below everything that could pull in a JSON
    dependency, so it carries its own ~100-line value type, printer and
    recursive-descent parser.  Two deliberate restrictions keep encoded
    traces byte-deterministic: numbers are OCaml [int]s only (no float
    formatting ambiguity — timestamps are integer nanoseconds), and
    object fields are rendered in exactly the order given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, deterministic rendering (no whitespace). *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parses one JSON value; trailing whitespace is allowed, anything else
    after the value is an error.  Accepts only integer numbers. *)

val member : string -> t -> t option
(** First binding of the field in an [Obj]; [None] otherwise. *)

val to_int : t -> (int, string) result
val to_str : t -> (string, string) result
val to_bool : t -> (bool, string) result
