(** Structured flight-recorder events.

    One event is recorded at each control-plane decision point the paper
    cares about: packet ingress at an edge switch, an L-FIB or
    flow-table hit, a G-FIB probe (including Bloom false positives), a
    designated-switch relay, every controller request, regrouping, and
    chaos fault / failover verdicts.

    Events are causally linked: each event owns a {e span} — the pair of
    its simulated timestamp and a per-tracer sequence number, never wall
    clock or randomness — and flow-tagged events carry the span of the
    previous event on the same flow as [parent], so a flow's history
    forms a chain that can be replayed from a trace file. *)

type span = { at : Lazyctrl_sim.Time.t; sn : int }

val span_compare : span -> span -> int
val span_equal : span -> span -> bool

type regroup = { full : bool; groups : int }
(** [full] distinguishes a full re-partition from an incremental
    adjustment; [groups] is the resulting group count. *)

type chaos = { fault : string; phase : string }
(** [fault] is the {!Lazyctrl_chaos.Fault.kind} label; [phase] is
    ["onset"] or ["repair"]. *)

type kind =
  | Ingress  (** packet entered the network at its source edge switch *)
  | Flow_table_hit  (** matched a controller-installed flow-table rule *)
  | Lfib_hit  (** destination resolved from the local L-FIB *)
  | Gfib_probe of int
      (** G-FIB Bloom probe; the payload is the number of candidate
          peer switches that matched *)
  | Bloom_fp  (** an encapsulated frame arrived at a switch that does
          not host its destination: a Bloom false positive *)
  | Punt of string
      (** packet left the fast path toward the controller; the payload
          names the reason (e.g. ["no_match"]) *)
  | Deliver  (** packet handed to its destination host *)
  | Arp_local  (** ARP request answered from local state *)
  | Arp_group  (** ARP request forwarded to the designated switch *)
  | Arp_escalate  (** ARP request escalated to the controller *)
  | Designated_relay of string
      (** the designated switch relayed intra-group control traffic;
          the payload names what (["advert"], ["group_arp"],
          ["state_report"]) *)
  | Ctrl_request of string
      (** the controller charged one request to its workload budget; the
          payload is the request-kind label (["packet_in"],
          ["arp_escalate"], ...) *)
  | Ctrl_packet_in  (** controller ran C-LIB lookup for a punted packet *)
  | Ctrl_install of int
      (** controller installed a forwarding rule; the payload is the
          target switch id *)
  | Ctrl_arp_relay  (** controller answered or relayed an escalated ARP *)
  | Ctrl_flood  (** controller fell back to a tenant-scoped flood *)
  | Regroup of regroup  (** controller re-partitioned the LCGs *)
  | Chaos_fault of chaos  (** a chaos fault began or was repaired *)
  | Failover of string
      (** wheel failure inference produced a verdict; the payload is the
          verdict label *)
  | Retransmit of string
      (** the reliable channel re-sent an unacked segment; the payload
          is the endpoint name *)
  | Reliable_giveup of string
      (** the reliable channel exhausted its retry budget *)

type t = {
  time : Lazyctrl_sim.Time.t;
  seq : int;
  flow : int option;  (** flow id for data-path events, [None] for
                          control-plane bookkeeping *)
  switch : int option;  (** switch id where the event happened, [None]
                            at the controller *)
  parent : span option;  (** span of the previous event on this flow *)
  kind : kind;
}

val span_of : t -> span

val tag : kind -> int
(** Dense tag in [0, n_tags): one slot per constructor, ignoring
    payloads.  Used for cumulative per-kind counters that survive
    ring-buffer eviction. *)

val n_tags : int

val tag_label : int -> string
(** Stable wire name of a tag, e.g. ["gfib_probe"].
    @raise Invalid_argument outside [0, n_tags). *)

val kind_label : kind -> string
(** [tag_label (tag k)]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Span order: [(time, seq)] lexicographically. *)

val to_json : t -> Tjson.t
(** Deterministic field order; all numbers are integers (timestamps in
    nanoseconds), so rendering is byte-stable across runs. *)

val of_json : Tjson.t -> (t, string) result
val pp : Format.formatter -> t -> unit
