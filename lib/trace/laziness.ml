module Det = Lazyctrl_util.Det

type verdict = Local | Gossip | Controller

let verdict_label = function
  | Local -> "local"
  | Gossip -> "gossip"
  | Controller -> "controller"

let rank = function Local -> 0 | Gossip -> 1 | Controller -> 2

let verdict_of_rank = function
  | 0 -> Local
  | 1 -> Gossip
  | 2 -> Controller
  | n -> invalid_arg (Printf.sprintf "Laziness.verdict_of_rank: %d" n)

let rank_of_kind (k : Event.kind) =
  match k with
  | Event.Ingress | Event.Flow_table_hit | Event.Lfib_hit | Event.Deliver
  | Event.Arp_local ->
      0
  | Event.Gfib_probe _ | Event.Bloom_fp | Event.Arp_group
  | Event.Designated_relay _ ->
      1
  | Event.Punt _ | Event.Arp_escalate | Event.Ctrl_request _
  | Event.Ctrl_packet_in | Event.Ctrl_install _ | Event.Ctrl_arp_relay
  | Event.Ctrl_flood ->
      2
  (* Control-plane bookkeeping: never attributed to a flow's verdict. *)
  | Event.Regroup _ | Event.Chaos_fault _ | Event.Failover _
  | Event.Retransmit _ | Event.Reliable_giveup _ ->
      0

type summary = {
  flows : int;
  local : int;
  gossip : int;
  controller : int;
  controller_requests : int;
  events : int;
  per_flow : (int * verdict) list;
}

let summary_of_verdicts ~controller_requests ~events per_flow =
  let count v =
    List.length (List.filter (fun (_, v') -> rank v' = rank v) per_flow)
  in
  {
    flows = List.length per_flow;
    local = count Local;
    gossip = count Gossip;
    controller = count Controller;
    controller_requests;
    events;
    per_flow;
  }

let of_events events =
  let ranks : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let requests = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      (match e.Event.kind with
      | Event.Ctrl_request _ -> incr requests
      | _ -> ());
      match e.Event.flow with
      | None -> ()
      | Some f -> (
          let r = rank_of_kind e.Event.kind in
          match Hashtbl.find_opt ranks f with
          | Some r0 when r0 >= r -> ()
          | _ -> Hashtbl.replace ranks f r))
    events;
  let per_flow =
    List.map
      (fun (f, r) -> (f, verdict_of_rank r))
      (Det.bindings_sorted ~cmp:Int.compare ranks)
  in
  summary_of_verdicts ~controller_requests:!requests
    ~events:(List.length events) per_flow

let controller_ratio s =
  if s.flows = 0 then 0.
  else float_of_int s.controller /. float_of_int s.flows

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>flows: %d@,\
     local: %d@,\
     gossip: %d@,\
     controller: %d@,\
     controller involvement: %.2f%%@,\
     controller requests: %d@,\
     events: %d@]"
    s.flows s.local s.gossip s.controller
    (100. *. controller_ratio s)
    s.controller_requests s.events
