type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int n -> Buffer.add_string buf (string_of_int n)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf item)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some got when Char.equal got c -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let expect_word st w =
  let n = String.length w in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) w
  then st.pos <- st.pos + n
  else error st (Printf.sprintf "expected %S" w)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  error st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some code -> code
                  | None -> error st "bad \\u escape"
                in
                (* Only the ASCII range is ever emitted by the writer. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else error st "non-ASCII \\u escape unsupported"
            | _ -> error st "unknown escape");
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_int st =
  let start = st.pos in
  (match peek st with Some '-' -> advance st | _ -> ());
  let rec digits () =
    match peek st with
    | Some ('0' .. '9') ->
        advance st;
        digits ()
    | _ -> ()
  in
  digits ();
  if st.pos = start then error st "expected number";
  (match peek st with
  | Some ('.' | 'e' | 'E') -> error st "non-integer number"
  | _ -> ());
  match int_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some n -> n
  | None -> error st "number out of range"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' ->
      expect_word st "null";
      Null
  | Some 't' ->
      expect_word st "true";
      Bool true
  | Some 'f' ->
      expect_word st "false";
      Bool false
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> Int (parse_int st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if Option.equal Char.equal (peek st) (Some ']') then (
        advance st;
        List [])
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance st;
      skip_ws st;
      if Option.equal Char.equal (peek st) (Some '}') then (
        advance st;
        Obj [])
      else
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              List.rev (kv :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (fields [])
  | Some c -> error st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos < String.length s then error st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ------------------------------------------------------------- *)

let member key v =
  match v with
  | Obj fields ->
      List.find_map
        (fun (k, field) -> if String.equal k key then Some field else None)
        fields
  | _ -> None

let to_int v =
  match v with Int n -> Ok n | _ -> Error "expected integer"

let to_str v =
  match v with String s -> Ok s | _ -> Error "expected string"

let to_bool v =
  match v with Bool b -> Ok b | _ -> Error "expected bool"
