(** Laziness accounting: fold a trace into per-flow verdicts.

    The paper's headline claim is that most flows never involve the
    central controller.  This pass makes that number first-class: every
    flow seen in a trace is classified by the most expensive control
    machinery it touched —

    - [Local]: resolved entirely from switch-local state (flow table,
      L-FIB, locally answered ARP);
    - [Gossip]: needed the lazy group machinery (G-FIB Bloom probes,
      designated-switch relays, group-scoped ARP) but not the
      controller;
    - [Controller]: punted, escalated, installed, or flooded by the
      controller.

    A Bloom false positive counts as [Gossip]: the extra hop is G-FIB
    mechanics, and the resulting [False_positive] report to the
    controller is charged to the control plane (it shows up in
    [controller_requests]), not to the flow's own verdict. *)

type verdict = Local | Gossip | Controller

val verdict_label : verdict -> string
val rank : verdict -> int
(** [Local] = 0 < [Gossip] = 1 < [Controller] = 2. *)

val verdict_of_rank : int -> verdict
(** @raise Invalid_argument outside [0, 2]. *)

val rank_of_kind : Event.kind -> int
(** Lattice contribution of one event to its flow's verdict. *)

type summary = {
  flows : int;  (** distinct flow ids seen *)
  local : int;
  gossip : int;
  controller : int;
  controller_requests : int;
      (** total [Ctrl_request] events — comparable with
          [Recorder.total_requests] when sampling is off *)
  events : int;  (** events folded (cumulative, pre-eviction when the
                     summary comes from a live tracer) *)
  per_flow : (int * verdict) list;  (** sorted by flow id *)
}

val summary_of_verdicts :
  controller_requests:int -> events:int -> (int * verdict) list -> summary
(** Build a summary from per-flow verdicts (must be sorted by flow id). *)

val of_events : Event.t list -> summary
(** Offline pass over a decoded trace, e.g. one loaded from JSONL. *)

val controller_ratio : summary -> float
(** Fraction of flows with a [Controller] verdict; [0.] when no flows
    were seen. *)

val pp_summary : Format.formatter -> summary -> unit
