(** Chaos harness for the controller cluster — the `lazyctrl chaos
    --cluster` backend.

    Builds an [n_members]-controller {!Plane}, warms it up, schedules
    seeded tenant flows across the fault window so faults land under
    traffic, injects a {!Lazyctrl_chaos.Scenario} drawn from the cluster
    fault vocabulary (controller kills, coordination-mesh partitions,
    switch power cycles, loss storms), and then polls the invariant
    monitors until quiescence.

    On top of the single-plane invariants (checked per alive member) it
    asserts two cluster-specific ones:

    - [homed]: every live switch's management-plane master is alive,
      holds a group configuration covering the switch, and the switch's
      own mastership term agrees with the management plane;
    - [disjoint-ownership]: no group is mastered by two alive members.

    The whole run is deterministic: the same config yields a
    byte-identical [fingerprint]. *)

open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_chaos

type config = {
  seed : int;
  n_members : int;
  n_switches : int;
  n_tenants : int;
  loss : float;    (** baseline loss on switch control + peer channels *)
  dup : float;
  spec : Scenario.spec;
  flows_per_tenant : int;
  warmup : Time.t;
  settle : Time.t;  (** budget after the last repair to reach quiescence *)
  poll : Time.t;
}

val default_config : config
(** 3 members, 16 switches, 4 faults over 40 s drawn from
    {!Lazyctrl_chaos.Fault.cluster_kinds}, lossless baseline. *)

type result = {
  events : Fault.event list;
  reports : Invariant.report list;
  converged_after : Time.t option;
  reliability : Reliable.stats;
  switch_stats : Edge_switch.stats;
  member_stats : Member.stats;
  flows_started : int;
  flows_delivered : int;
  resolutions_failed : int;
  involvement : float;
      (** controller-involvement ratio: punted / datapath decisions *)
  fingerprint : string;
}

val run : config -> result
