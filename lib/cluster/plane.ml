open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_core
module Prng = Lazyctrl_util.Prng
module Det = Lazyctrl_util.Det
module Sid = Ids.Switch_id
module Gid = Ids.Group_id
module Wire = Lazyctrl_wire.Wire

(* Switch-facing channels carry encoded §13 frames, like Network's.  The
   coordination mesh stays value-passing: it is the management plane
   between controller processes (gossip, views, handoffs), not
   switch-facing OpenFlow, and its load is not part of the Fig. 7
   control-channel series — the documented exception in DESIGN.md §13. *)
let set_proto_codec ch =
  Channel.set_codec ch ~encode:(Wire.encode Proto.wire_ext)
    ~decode:(Wire.decode Proto.wire_ext)

type t = {
  params : Params.t;
  controller_config : Controller.config;
  engine : Engine.t;
  topo : Topology.t;
  underlay : Underlay.t;
  hosts : Host_model.t;
  rng : Prng.t;
  n_members : int;
  controllers : Controller.t array;
  members : Member.t array;
  switches : Edge_switch.t array;
  up : Edge_switch.msg Channel.t array array;   (* up.(k).(i): switch i -> member k *)
  down : Edge_switch.msg Channel.t array array; (* down.(k).(i): member k -> switch i *)
  coord : Coord.t Channel.t array array;        (* coord.(k).(j): member k -> member j *)
  peer : (int * int, Edge_switch.msg Channel.t) Hashtbl.t;
  alive : bool array;
  cut : bool array;    (* partitioned off the coordination mesh *)
  uplink : int array;  (* management plane: current master per switch *)
  terms : int array;   (* management plane: mastership generation per switch *)
  loss_rng : Prng.t;
  peer_loss : Channel.loss_spec option ref;
}

let engine t = t.engine
let topology t = t.topo
let host_model t = t.hosts
let n_members t = t.n_members
let run t ~until = Engine.run ~until t.engine
let controller t k = t.controllers.(k)
let member t k = t.members.(k)
let edge_switch t sw = t.switches.(Sid.to_int sw)
let uplink_of t sw = t.uplink.(Sid.to_int sw)
let term_of t sw = t.terms.(Sid.to_int sw)

let alive_members t =
  let out = ref [] in
  for k = t.n_members - 1 downto 0 do
    if t.alive.(k) then out := k :: !out
  done;
  !out

let live_switches t =
  List.filter_map
    (fun sw ->
      let es = t.switches.(Sid.to_int sw) in
      if Edge_switch.is_up es then Some (sw, es) else None)
    (Topology.switches t.topo)

let apply_loss loss_rng spec ch =
  match spec with
  | None -> Channel.clear_loss ch
  | Some spec ->
      Channel.set_loss ch
        ~rng:(Prng.named loss_rng ("loss:" ^ Channel.name ch))
        spec

let create ?(params = Params.default)
    ?(controller_config = Controller.default_config)
    ?(member_config = Member.default_config)
    ?(coord_latency = Time.of_us 500) ~n_members ~topo () =
  if n_members < 2 then invalid_arg "Plane.create: need >= 2 members";
  let n = Topology.n_switches topo in
  let engine = Engine.create () in
  let underlay =
    Underlay.create engine ~latency:params.Params.underlay_latency ()
  in
  let rng = Prng.create params.Params.seed in
  let loss_rng = Prng.named rng "channel-loss" in
  let peer_loss = ref params.Params.peer_loss in
  let send_ref = ref (fun (_ : Host.t) (_ : Packet.t) -> ()) in
  let hosts =
    Host_model.create engine
      ~send:(fun h p -> !send_ref h p)
      ~arp_ttl:params.Params.arp_cache_ttl
      ~stack_delay:params.Params.host_stack_delay
  in
  let deliver_local host pkt =
    ignore
      (Engine.schedule engine ~after:params.Params.host_port_latency (fun () ->
           ignore (Host_model.deliver hosts ~to_:host pkt)))
  in
  let alive = Array.make n_members true in
  let cut = Array.make n_members false in
  let uplink = Array.make n 0 in
  let terms = Array.make n 0 in
  let mk_ctrl_channel fmt k i =
    let ch =
      Channel.create ~strict:true engine
        ~latency:params.Params.control_link_latency
        ~name:(Printf.sprintf fmt k i) ()
    in
    set_proto_codec ch;
    apply_loss loss_rng params.Params.control_loss ch;
    ch
  in
  let up =
    Array.init n_members (fun k ->
        Array.init n (fun i -> mk_ctrl_channel "c%d-up-%d" k i))
  in
  let down =
    Array.init n_members (fun k ->
        Array.init n (fun i -> mk_ctrl_channel "c%d-down-%d" k i))
  in
  (* The coordination mesh: loss-free, only ever down under faults. *)
  let coord =
    Array.init n_members (fun k ->
        Array.init n_members (fun j ->
            Channel.create ~strict:true engine ~latency:coord_latency
              ~name:(Printf.sprintf "coord-%d-%d" k j) ()))
  in
  let peer : (int * int, Edge_switch.msg Channel.t) Hashtbl.t =
    Hashtbl.create 1024
  in
  let switches : Edge_switch.t option array = Array.make n None in
  let get_switch i = Option.get switches.(i) in
  let peer_channel src dst =
    let key = (Sid.to_int src, Sid.to_int dst) in
    match Hashtbl.find_opt peer key with
    | Some ch -> ch
    | None ->
        let ch =
          Channel.create ~strict:true engine
            ~latency:params.Params.peer_link_latency
            ~name:(Printf.sprintf "peer-%d-%d" (fst key) (snd key))
            ()
        in
        set_proto_codec ch;
        apply_loss loss_rng !peer_loss ch;
        Channel.set_receiver ch (fun msg ->
            Edge_switch.handle_peer_message (get_switch (snd key)) ~from:src msg);
        Hashtbl.replace peer key ch;
        ch
  in
  (* Management-plane claim: reject stale terms with feedback, flip the
     uplink on a winning claim and forward the Rehome to the switch on
     the new master's FIFO channel (so it precedes the config push). *)
  let rehome_claim k sw ~term =
    let i = Sid.to_int sw in
    if alive.(k) && term >= terms.(i) then begin
      if term > terms.(i) then begin
        terms.(i) <- term;
        uplink.(i) <- k
      end;
      ignore
        (Channel.send down.(k).(i)
           (Message.Extension (Proto.Rehome { term; master = k })))
    end;
    terms.(i)
  in
  let send_coord k j msg = alive.(k) && Channel.send coord.(k).(j) msg in
  (* Route a control message from member k: down the own spoke when k
     masters the switch, otherwise forwarded to the current master over
     the coordination mesh (re-routed there if the uplink moved again). *)
  let send_switch k sw msg =
    let i = Sid.to_int sw in
    if uplink.(i) = k then ignore (Channel.send down.(k).(i) msg)
    else ignore (send_coord k uplink.(i) (Coord.Fwd { from = k; dst = sw; msg }))
  in
  let oam_seq = ref 0 in
  let probe k sw =
    incr oam_seq;
    ignore
      (Channel.send down.(k).(Sid.to_int sw) (Message.Echo_request !oam_seq))
  in
  let services =
    Array.init n_members (fun _ ->
        Service_queue.create engine ~service_time:params.Params.controller_service)
  in
  let controllers =
    Array.init n_members (fun k ->
        Controller.create
          {
            Controller.engine;
            send_switch = send_switch k;
            reboot_switch =
              (fun sw ->
                ignore
                  (Engine.schedule engine ~after:params.Params.reboot_delay
                     (fun () -> Edge_switch.set_up (get_switch (Sid.to_int sw)) true)));
            request_relay = (fun _ ~via:_ -> ());
            (* ring relay is the single-controller §III-E2 path; the
               cluster re-homes instead *)
            rng = Prng.named rng (Printf.sprintf "controller-%d" k);
          }
          controller_config ~n_switches:n)
  in
  let members =
    Array.init n_members (fun k ->
        Member.create
          {
            Member.engine;
            self = k;
            n_members;
            controller = controllers.(k);
            send_coord = send_coord k;
            send_rehome = rehome_claim k;
            probe_switch = probe k;
          }
          member_config)
  in
  (* Receivers. A member spoke carries master traffic only; a slave spoke
     answers OAM echoes below the session layer, everything else from a
     stale master is discarded on arrival. *)
  Array.iteri
    (fun k per_switch ->
      Array.iteri
        (fun i ch ->
          Channel.set_receiver ch (fun msg ->
              if alive.(k) then
                if uplink.(i) = k then
                  Service_queue.submit services.(k) (fun () ->
                      if alive.(k) then
                        Controller.handle_message controllers.(k)
                          ~from:(Sid.of_int i) msg)
                else
                  match msg with
                  | Message.Echo_reply _ ->
                      Member.note_probe_reply members.(k) (Sid.of_int i)
                  | _ -> ()))
        per_switch)
    up;
  Array.iteri
    (fun k per_switch ->
      Array.iteri
        (fun i ch ->
          Channel.set_receiver ch (fun msg ->
              if uplink.(i) = k then
                Edge_switch.handle_controller_message (get_switch i) msg
              else
                match msg with
                | Message.Echo_request nonce ->
                    (* slave-spoke OAM: answered below the switch's
                       control session, proving datapath liveness *)
                    if Edge_switch.is_up (get_switch i) then
                      ignore (Channel.send up.(k).(i) (Message.Echo_reply nonce))
                | _ -> ()))
        per_switch)
    down;
  Array.iteri
    (fun k row ->
      Array.iteri
        (fun j ch ->
          Channel.set_receiver ch (fun msg ->
              if alive.(j) then
                match msg with
                | Coord.Fwd { dst; msg; _ } -> send_switch j dst msg
                | msg -> Member.handle members.(j) ~from:k msg))
        row)
    coord;
  (* Cluster hooks: gossip C-LIB deltas and unresolved ARP relays to
     every peer (raw; see Coord for the recovery story). *)
  Array.iteri
    (fun k c ->
      Controller.set_clib_delta_hook c (fun delta ->
          for j = 0 to n_members - 1 do
            if j <> k then
              ignore (send_coord k j (Coord.Clib_delta { from = k; delta }))
          done);
      Controller.set_arp_relay_hook c (fun ~origin packet ->
          for j = 0 to n_members - 1 do
            if j <> k then
              ignore (send_coord k j (Coord.Arp_relay { from = k; origin; packet }))
          done))
    controllers;
  (* Switches. *)
  for i = 0 to n - 1 do
    let self = Sid.of_int i in
    let env =
      {
        Edge_switch.engine;
        send_controller = (fun msg -> Channel.send up.(uplink.(i)).(i) msg);
        send_peer =
          (fun p msg ->
            if not (Sid.equal p self) then
              ignore (Channel.send (peer_channel self p) msg));
        send_underlay = (fun pkt -> ignore (Underlay.send underlay pkt));
        deliver_local;
        underlay_ip_of = (fun sw -> Topology.underlay_ip topo sw);
      }
    in
    let sw =
      Edge_switch.create
        ~rng:(Prng.named rng "switch-sessions")
        env params.Params.switch_config ~self
    in
    switches.(i) <- Some sw;
    Underlay.register underlay (Topology.underlay_ip topo self) (fun pkt ->
        Edge_switch.handle_underlay sw pkt)
  done;
  let t =
    {
      params;
      controller_config;
      engine;
      topo;
      underlay;
      hosts;
      rng;
      n_members;
      controllers;
      members;
      switches = Array.map Option.get switches;
      up;
      down;
      coord;
      peer;
      alive;
      cut;
      uplink;
      terms;
      loss_rng;
      peer_loss;
    }
  in
  (send_ref :=
     fun host pkt ->
       let loc = Topology.location topo host.Host.id in
       ignore
         (Engine.schedule engine ~after:params.Params.host_port_latency
            (fun () ->
              Edge_switch.handle_from_host t.switches.(Sid.to_int loc) host pkt)));
  List.iter
    (fun (h : Host.t) ->
      let loc = Sid.to_int (Topology.location topo h.id) in
      Edge_switch.attach_host t.switches.(loc) h)
    (Topology.hosts topo);
  t

let bootstrap t =
  let intensity = Network.default_intensity t.topo in
  let grouping =
    Lazyctrl_grouping.Sgi.ini_group
      ~rng:(Prng.named t.rng "ini-group")
      ~limit:t.controller_config.Controller.group_size_limit intensity
  in
  let m = t.n_members in
  let entries =
    List.init (Lazyctrl_grouping.Grouping.n_groups grouping) (fun g ->
        let owner = g mod m in
        (* initial term ≡ owner (mod m) and > 0, as if owner had claimed *)
        let term = if owner = 0 then m else owner in
        {
          Coord.v_group = Gid.of_int g;
          v_term = term;
          v_owner = owner;
          v_members = Lazyctrl_grouping.Grouping.members grouping (Gid.of_int g);
        })
  in
  (* Seed the management plane so routing is correct from the first
     message; each member's initial claim then matches (equal term). *)
  List.iter
    (fun (e : Coord.view_entry) ->
      List.iter
        (fun sw ->
          t.uplink.(Sid.to_int sw) <- e.v_owner;
          t.terms.(Sid.to_int sw) <- e.v_term)
        e.v_members)
    entries;
  Array.iter (fun mem -> Member.start mem ~initial:entries) t.members

let start_flow t ~src ~dst ~bytes ~packets =
  let src = Topology.host t.topo src and dst = Topology.host t.topo dst in
  Host_model.start_flow t.hosts ~src ~dst ~bytes ~packets

(* --- fault injection ----------------------------------------------------- *)

(* Channel states as a function of member liveness and partitions:
   recomputed wholesale after every change, so overlapping faults stay
   consistent. *)
let refresh_links t =
  for k = 0 to t.n_members - 1 do
    Array.iter
      (fun ch -> if t.alive.(k) then Channel.repair ch else Channel.fail ch)
      t.up.(k);
    Array.iter
      (fun ch -> if t.alive.(k) then Channel.repair ch else Channel.fail ch)
      t.down.(k);
    for j = 0 to t.n_members - 1 do
      if k <> j then
        if t.alive.(k) && t.alive.(j) && (not t.cut.(k)) && not t.cut.(j) then
          Channel.repair t.coord.(k).(j)
        else Channel.fail t.coord.(k).(j)
    done
  done

let kill_member t k =
  if t.alive.(k) then begin
    t.alive.(k) <- false;
    Member.stop t.members.(k);
    refresh_links t
  end

let revive_member t k =
  if not t.alive.(k) then begin
    t.alive.(k) <- true;
    t.cut.(k) <- false;
    refresh_links t;
    Member.restart t.members.(k)
  end

let partition_member t k =
  if not t.cut.(k) then begin
    t.cut.(k) <- true;
    refresh_links t
  end

let heal_member t k =
  if t.cut.(k) then begin
    t.cut.(k) <- false;
    refresh_links t
  end

let fail_switch t sw = Edge_switch.set_up t.switches.(Sid.to_int sw) false

let repair_switch t sw =
  let es = t.switches.(Sid.to_int sw) in
  if not (Edge_switch.is_up es) then Edge_switch.set_up es true

let set_control_loss t spec =
  Array.iter (Array.iter (apply_loss t.loss_rng spec)) t.up;
  Array.iter (Array.iter (apply_loss t.loss_rng spec)) t.down

let set_peer_loss t spec =
  t.peer_loss := spec;
  List.iter
    (fun (_, ch) -> apply_loss t.loss_rng spec ch)
    (Det.bindings_sorted ~cmp:Det.pair_compare t.peer)

(* --- aggregate accounting ------------------------------------------------ *)

let zero_stats : Edge_switch.stats =
  {
    packets_from_hosts = 0;
    packets_delivered = 0;
    encap_sent = 0;
    flow_table_handled = 0;
    lfib_handled = 0;
    gfib_handled = 0;
    gfib_duplicates = 0;
    punted = 0;
    fp_drops = 0;
    arp_local_answered = 0;
    arp_group_escalated = 0;
    adverts_sent = 0;
    keepalives_sent = 0;
    misses_buffered = 0;
    misses_replayed = 0;
  }

let switch_stats_sum t =
  Array.fold_left
    (fun (acc : Edge_switch.stats) sw ->
      let s = Edge_switch.stats sw in
      {
        Edge_switch.packets_from_hosts =
          acc.packets_from_hosts + s.packets_from_hosts;
        packets_delivered = acc.packets_delivered + s.packets_delivered;
        encap_sent = acc.encap_sent + s.encap_sent;
        flow_table_handled = acc.flow_table_handled + s.flow_table_handled;
        lfib_handled = acc.lfib_handled + s.lfib_handled;
        gfib_handled = acc.gfib_handled + s.gfib_handled;
        gfib_duplicates = acc.gfib_duplicates + s.gfib_duplicates;
        punted = acc.punted + s.punted;
        fp_drops = acc.fp_drops + s.fp_drops;
        arp_local_answered = acc.arp_local_answered + s.arp_local_answered;
        arp_group_escalated = acc.arp_group_escalated + s.arp_group_escalated;
        adverts_sent = acc.adverts_sent + s.adverts_sent;
        keepalives_sent = acc.keepalives_sent + s.keepalives_sent;
        misses_buffered = acc.misses_buffered + s.misses_buffered;
        misses_replayed = acc.misses_replayed + s.misses_replayed;
      })
    zero_stats t.switches

let ctrl_bytes_sent t =
  let sum acc arr =
    Array.fold_left (fun acc ch -> acc + Channel.bytes_sent ch) acc arr
  in
  let acc = Array.fold_left sum 0 t.up in
  Array.fold_left sum acc t.down

let reliability_stats t =
  let acc =
    Array.fold_left
      (fun acc c -> Reliable.stats_add acc (Controller.reliable_stats c))
      Reliable.stats_zero t.controllers
  in
  let acc =
    Array.fold_left
      (fun acc sw -> Reliable.stats_add acc (Edge_switch.reliable_stats sw))
      acc t.switches
  in
  Array.fold_left
    (fun acc m -> Reliable.stats_add acc (Member.reliable_stats m))
    acc t.members

let member_stats_sum t =
  Array.fold_left
    (fun (acc : Member.stats) m ->
      let s = Member.stats m in
      {
        Member.hellos_sent = acc.hellos_sent + s.hellos_sent;
        rehomes_sent = acc.rehomes_sent + s.rehomes_sent;
        adoptions = acc.adoptions + s.adoptions;
        releases = acc.releases + s.releases;
        handoffs_offered = acc.handoffs_offered + s.handoffs_offered;
        peer_deaths = acc.peer_deaths + s.peer_deaths;
        peer_revivals = acc.peer_revivals + s.peer_revivals;
        controller_failure_verdicts =
          acc.controller_failure_verdicts + s.controller_failure_verdicts;
      })
    {
      Member.hellos_sent = 0;
      rehomes_sent = 0;
      adoptions = 0;
      releases = 0;
      handoffs_offered = 0;
      peer_deaths = 0;
      peer_revivals = 0;
      controller_failure_verdicts = 0;
    }
    t.members
