(** One controller-cluster member: a {!Lazyctrl_controller.Controller}
    instance plus the coordination logic that decides which LCGs it
    masters.

    Liveness is hello-based: every member beacons {!Coord.Hello} to every
    peer each [hello_period]; a peer silent for [hello_timeout] is
    presumed dead. Before adopting a dead peer's groups, the successor
    probes the orphaned switches over its own (slave) spoke — a switch
    answering the second spoke while its master is silent is the extended
    Table-I {!Lazyctrl_controller.Failover.Controller_failure} pattern:
    re-home, don't reboot. Successor choice is deterministic (lowest
    load, then lowest index, computed identically by every member from
    the shared ownership view), and the orphan sweep re-runs every hello
    tick while the owner stays dead, so lost claims are always retried.

    Mastership claims are made through the management plane
    ([send_rehome]), which returns the switch's current term: a claim
    with a stale term is rejected and the caller learns the winning term
    — and, because claimants always pick terms congruent to their own
    index mod the cluster size, the winning term also identifies the
    winning member. Load balance (EASM) runs on a slower timer: a member
    whose owned-group count exceeds the least-loaded alive peer's by
    [migrate_gap] offers its highest-numbered group via a reliable
    {!Coord.Handoff}; the offerer keeps mastering the group until the
    adopter's {!Coord.Claimed} arrives, so no window exists with zero
    masters. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_controller

type config = {
  hello_period : Time.t;
  hello_timeout : Time.t;  (** silence longer than this marks a peer dead *)
  probe_window : Time.t;   (** second-spoke probe round before adoption *)
  migrate_period : Time.t; (** EASM evaluation cadence *)
  migrate_gap : int;       (** min owned-group imbalance to hand off *)
  migrate_cooldown : Time.t;
  retrans : Reliable.config;  (** for the per-peer coordination sessions *)
}

val default_config : config

type env = {
  engine : Engine.t;
  self : int;
  n_members : int;
  controller : Controller.t;
  send_coord : int -> Coord.t -> bool;
      (** coordination mesh; [false] = link or peer down *)
  send_rehome : Ids.Switch_id.t -> term:int -> int;
      (** management-plane mastership claim; returns the switch's current
          term after the claim (> the argument means the claim lost) *)
  probe_switch : Ids.Switch_id.t -> unit;
      (** OAM echo to a switch over this member's slave spoke *)
}

type stats = {
  hellos_sent : int;
  rehomes_sent : int;       (** claims + idempotent re-announcements *)
  adoptions : int;          (** groups adopted (failover + handoffs) *)
  releases : int;           (** groups ceded to a higher-term claim *)
  handoffs_offered : int;   (** EASM migration offers sent *)
  peer_deaths : int;
  peer_revivals : int;
  controller_failure_verdicts : int;
      (** probed switches whose evidence inferred as Controller_failure *)
}

type t

val create : env -> config -> t

val start : t -> initial:Coord.view_entry list -> unit
(** Seed the ownership view with the cluster-wide initial assignment
    (identical at every member), claim and bootstrap this member's own
    slice at its controller, and arm the hello and migration timers. *)

val stop : t -> unit
(** Kill this member: cancel timers, release owned groups at the
    controller (survivors will claim them), shut the controller's own
    timers down and go silent. Idempotent. *)

val restart : t -> unit
(** Revive after {!stop}: rejoin the mesh owning nothing, with fresh
    outgoing session epochs; peers detecting the revival resync their
    ownership views and C-LIB rows, and EASM refills this member over
    time. Idempotent. *)

val is_running : t -> bool

val handle : t -> from:int -> Coord.t -> unit
(** Entry point for coordination-mesh arrivals (except {!Coord.Fwd},
    which the plane routes itself). Any arrival refreshes the sender's
    liveness; a dead → alive transition triggers the full resync. *)

val note_probe_reply : t -> Ids.Switch_id.t -> unit
(** An OAM echo reply arrived from a probed switch. *)

val view : t -> Coord.view_entry list
(** The ownership view, ascending by group id. *)

val owned : t -> (Ids.Group_id.t * Ids.Switch_id.t list) list
(** Groups this member currently masters, ascending by group id. *)

val stats : t -> stats

val reliable_stats : t -> Reliable.stats
(** Aggregate over the per-peer coordination sessions. *)
