(** The controller-cluster coordination protocol.

    Cluster members (controller instances each owning a slice of the
    LCGs) exchange these messages over a full mesh of point-to-point
    coordination links. The grammar splits into two delivery classes:

    - {e raw} messages ride the channel as-is. Their loss is either the
      liveness signal itself ([Hello]), recovered by an application-level
      retry (ARP relays are re-driven by host retransmission), or
      repaired wholesale at the next full resync ([Clib_delta], whose
      rows are re-exchanged in full whenever a peer transitions
      dead → alive).
    - {e ownership} messages ([Owner_view], [Handoff], [Claimed]) travel
      inside per-peer {!Lazyctrl_openflow.Reliable} sessions — boxed in
      [Seq]/[Ack] envelopes exactly like the switch control links — so a
      migration or failover decision is never silently dropped, and the
      transport's exactly-once audit extends across the cluster. *)

open Lazyctrl_net
open Lazyctrl_switch
module Message = Lazyctrl_openflow.Message

type view_entry = {
  v_group : Ids.Group_id.t;
  v_term : int;
      (** mastership generation of the group's current claim; terms
          totally order claims, and a claimant always picks a term
          congruent to its own index mod the cluster size, so two
          members can never claim with equal terms *)
  v_owner : int;  (** member index currently mastering the group *)
  v_members : Ids.Switch_id.t list;
}

type t =
  | Hello of { from : int; load : int }
      (** periodic liveness beacon; [load] is the sender's owned-group
          count (raw — its absence is the failure detector) *)
  | Clib_delta of { from : int; delta : Proto.lfib_delta }
      (** C-LIB gossip: every locally learnt delta is broadcast so all
          members converge on the global host map (raw; full rows are
          re-sent on peer revival) *)
  | Arp_relay of { from : int; origin : Ids.Switch_id.t; packet : Packet.t }
      (** cross-shard ARP: the sender found no owner in its C-LIB and
          already broadcast into its own groups; receivers broadcast
          into theirs (raw; host ARP retries re-drive losses) *)
  | Fwd of { from : int; dst : Ids.Switch_id.t; msg : Proto.t Message.t }
      (** a control-link message for a switch the sender no longer
          masters, forwarded to the current master (raw; end-to-end
          reliability lives in the controller ↔ switch sessions) *)
  | Owner_view of { from : int; view : view_entry list }
      (** full ownership table of the sender, exchanged on revival and
          partition heal to reconcile divergent claims (reliable) *)
  | Handoff of { from : int; entry : view_entry }
      (** EASM load-triggered migration offer: "adopt this group"; the
          sender keeps mastering it until the [Claimed] comes back, so
          no window exists with zero masters (reliable) *)
  | Claimed of { from : int; entry : view_entry }
      (** claim announcement after an adoption (failover or handoff);
          carries the new term so losers release (reliable) *)
  | Seq of { epoch : int; seq : int; payload : t }
      (** reliable-delivery envelope, numbered by
          {!Lazyctrl_openflow.Reliable} *)
  | Ack of { epoch : int; cum : int }

val size_estimate : t -> int
(** Approximate wire size for channel accounting. *)

val pp : Format.formatter -> t -> unit
