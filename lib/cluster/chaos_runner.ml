open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_core
open Lazyctrl_chaos
module Prng = Lazyctrl_util.Prng
module Placement = Lazyctrl_topo.Placement
module Topology = Lazyctrl_topo.Topology
module Sid = Ids.Switch_id
module Gid = Ids.Group_id

type config = {
  seed : int;
  n_members : int;
  n_switches : int;
  n_tenants : int;
  loss : float;
  dup : float;
  spec : Scenario.spec;
  flows_per_tenant : int;
  warmup : Time.t;
  settle : Time.t;
  poll : Time.t;
}

let default_config =
  {
    seed = 42;
    n_members = 3;
    n_switches = 16;
    n_tenants = 6;
    loss = 0.0;
    dup = 0.0;
    spec =
      {
        Scenario.default with
        Scenario.kinds = Fault.cluster_kinds;
        n_faults = 4;
        window = Time.of_sec 40;
        min_duration = Time.of_sec 8;
        max_duration = Time.of_sec 15;
      };
    flows_per_tenant = 3;
    warmup = Time.of_sec 30;
    settle = Time.of_min 3;
    poll = Time.of_sec 2;
  }

(* Small groups so each of the three members owns several, giving kills
   and handoffs something to move; timers tight enough that detection,
   probing and re-homing fit in simulated seconds. *)
let cluster_controller_config =
  {
    Controller.default_config with
    Controller.group_size_limit = 4;
    sync_period = Time.of_sec 10;
    keepalive_period = Time.of_sec 2;
    echo_period = Time.of_sec 5;
    echo_timeout = Time.of_sec 12;
    daemon_period = Time.of_sec 5;
    incremental_updates = false;
    reliable_state = true;
  }

type result = {
  events : Fault.event list;
  reports : Invariant.report list;
  converged_after : Time.t option;
  reliability : Reliable.stats;
  switch_stats : Edge_switch.stats;
  member_stats : Member.stats;
  flows_started : int;
  flows_delivered : int;
  resolutions_failed : int;
  involvement : float;
  fingerprint : string;
}

(* --- cluster-specific invariants ----------------------------------------- *)

let check_homed plane live =
  let alive = Plane.alive_members plane in
  let bad =
    List.filter_map
      (fun (sid, es) ->
        let k = Plane.uplink_of plane sid in
        let master_alive = List.mem k alive in
        let configured =
          master_alive
          && Option.is_some
               (Controller.group_config_of (Plane.controller plane k) sid)
        in
        let term_ok = Edge_switch.master_term es = Plane.term_of plane sid in
        if master_alive && configured && term_ok then None
        else
          Some
            (Format.asprintf "%a@c%d%s%s%s" Sid.pp sid k
               (if master_alive then "" else ":dead-master")
               (if configured || not master_alive then "" else ":unconfigured")
               (if term_ok then "" else ":stale-term")))
      live
  in
  {
    Invariant.name = "homed";
    ok = List.is_empty bad;
    detail =
      (if List.is_empty bad then
         Printf.sprintf "%d live switches mastered by live, configured members"
           (List.length live)
       else String.concat " " bad);
  }

let check_disjoint plane =
  let seen = Hashtbl.create 16 in
  let dups = ref [] in
  List.iter
    (fun k ->
      List.iter
        (fun (g, _) ->
          match Hashtbl.find_opt seen (Gid.to_int g) with
          | Some j ->
              dups := Format.asprintf "%a@c%d+c%d" Gid.pp g j k :: !dups
          | None -> Hashtbl.replace seen (Gid.to_int g) k)
        (Member.owned (Plane.member plane k)))
    (Plane.alive_members plane);
  let dups = List.rev !dups in
  {
    Invariant.name = "disjoint-ownership";
    ok = List.is_empty dups;
    detail =
      (if List.is_empty dups then
         Printf.sprintf "%d groups, each mastered by one alive member"
           (Hashtbl.length seen)
       else String.concat " " dups);
  }

let check_all plane =
  let live = Plane.live_switches plane in
  let alive = Plane.alive_members plane in
  let per_member =
    List.concat_map
      (fun k ->
        let c = Plane.controller plane k in
        [ Invariant.check_clib c live; Invariant.check_monitor c ])
      alive
  in
  [ Invariant.check_grouped live; Invariant.check_bloom live ]
  @ per_member
  @ [
      Invariant.check_exactly_once_stats (Plane.reliability_stats plane);
      check_homed plane live;
      check_disjoint plane;
    ]

(* --- fault injection over the plane -------------------------------------- *)

let inject plane cfg ~baseline events =
  let engine = Plane.engine plane in
  let m = Plane.n_members plane in
  let storms = ref 0 in
  let start_burst () =
    incr storms;
    Plane.set_control_loss plane (Some cfg.spec.Scenario.burst);
    Plane.set_peer_loss plane (Some cfg.spec.Scenario.burst)
  in
  let end_burst () =
    decr storms;
    if !storms = 0 then begin
      Plane.set_control_loss plane baseline;
      Plane.set_peer_loss plane baseline
    end
  in
  List.iter
    (fun (e : Fault.event) ->
      (* Controller faults reduce the drawn switch to a member index. *)
      let target = Sid.to_int e.primary mod m in
      let fail, repair =
        match e.kind with
        | Fault.Controller_kill ->
            ( (fun () -> Plane.kill_member plane target),
              fun () -> Plane.revive_member plane target )
        | Fault.Controller_partition ->
            ( (fun () -> Plane.partition_member plane target),
              fun () -> Plane.heal_member plane target )
        | Fault.Switch_off ->
            ( (fun () -> Plane.fail_switch plane e.primary),
              fun () -> Plane.repair_switch plane e.primary )
        | Fault.Burst_loss -> (start_burst, end_burst)
        | Fault.Control_link | Fault.Peer_link | Fault.Data_path ->
            (* not in the cluster vocabulary; inert if a caller asks *)
            ((fun () -> ()), fun () -> ())
      in
      ignore (Engine.schedule engine ~after:e.Fault.at fail);
      ignore (Engine.schedule engine ~after:(Fault.repair_at e) repair))
    events

(* --- fingerprint ---------------------------------------------------------- *)

let fingerprint_of ~events ~reports ~converged_after ~reliability ~switch_stats
    ~member_stats ~flows_started ~flows_delivered ~resolutions_failed ~at =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun e -> add "event %s\n" (Format.asprintf "%a" Fault.pp_event e))
    events;
  List.iter
    (fun r -> add "invariant %s\n" (Format.asprintf "%a" Invariant.pp_report r))
    reports;
  (match converged_after with
  | Some t -> add "converged_after %d\n" (Time.to_ns t)
  | None -> add "converged_after none\n");
  let r = reliability in
  add
    "reliable data=%d retrans=%d acks=%d delivered=%d dups=%d stale=%d tail=%d \
     give_ups=%d violations=%d\n"
    r.Reliable.data_sent r.Reliable.retransmits r.Reliable.acks_sent
    r.Reliable.delivered r.Reliable.dups_ignored r.Reliable.stale_dropped
    r.Reliable.tail_dropped r.Reliable.give_ups r.Reliable.violations;
  let s = switch_stats in
  add
    "switch from_hosts=%d delivered=%d encap=%d ft=%d lfib=%d gfib=%d gdup=%d \
     punted=%d fp=%d arp_l=%d arp_g=%d adverts=%d ka=%d miss_buf=%d miss_rep=%d\n"
    s.Edge_switch.packets_from_hosts s.Edge_switch.packets_delivered
    s.Edge_switch.encap_sent s.Edge_switch.flow_table_handled
    s.Edge_switch.lfib_handled s.Edge_switch.gfib_handled
    s.Edge_switch.gfib_duplicates s.Edge_switch.punted s.Edge_switch.fp_drops
    s.Edge_switch.arp_local_answered s.Edge_switch.arp_group_escalated
    s.Edge_switch.adverts_sent s.Edge_switch.keepalives_sent
    s.Edge_switch.misses_buffered s.Edge_switch.misses_replayed;
  let m = member_stats in
  add
    "member hellos=%d rehomes=%d adoptions=%d releases=%d handoffs=%d \
     deaths=%d revivals=%d ctrl_failures=%d\n"
    m.Member.hellos_sent m.Member.rehomes_sent m.Member.adoptions
    m.Member.releases m.Member.handoffs_offered m.Member.peer_deaths
    m.Member.peer_revivals m.Member.controller_failure_verdicts;
  add "flows started=%d delivered=%d unresolved=%d\n" flows_started
    flows_delivered resolutions_failed;
  add "clock %d\n" (Time.to_ns at);
  Buffer.contents b

(* --- the run -------------------------------------------------------------- *)

let placement_spec cfg =
  {
    Placement.n_switches = cfg.n_switches;
    n_tenants = cfg.n_tenants;
    tenant_size_min = 8;
    tenant_size_max = 16;
    racks_per_tenant = 3;
    stray_fraction = 0.05;
  }

let run cfg =
  let rng = Prng.create cfg.seed in
  let topo =
    Placement.generate ~rng:(Prng.named rng "topo") (placement_spec cfg)
  in
  let baseline =
    if cfg.loss > 0.0 || cfg.dup > 0.0 then
      Some (Channel.uniform_loss ~dup:cfg.dup cfg.loss)
    else None
  in
  let params =
    {
      (Params.with_seed cfg.seed Params.default) with
      Params.control_loss = baseline;
      peer_loss = baseline;
      switch_config =
        { Edge_switch.default_config with Edge_switch.reliable_state = true };
    }
  in
  let plane =
    Plane.create ~params ~controller_config:cluster_controller_config
      ~n_members:cfg.n_members ~topo ()
  in
  let engine = Plane.engine plane in
  Plane.bootstrap plane;
  Plane.run plane ~until:cfg.warmup;
  (* Tenant flows at seeded offsets across the fault window, so kills and
     partitions land while traffic is resolving and punting. *)
  let flow_rng = Prng.named rng "flows" in
  let window_ms = Time.to_ns cfg.spec.Scenario.window / 1_000_000 in
  List.iter
    (fun tid ->
      let hosts = Array.of_list (Topology.tenant_hosts topo tid) in
      if Array.length hosts >= 2 then
        for _ = 1 to cfg.flows_per_tenant do
          let a = Prng.choose flow_rng hosts and b = Prng.choose flow_rng hosts in
          let after = Time.of_ms (Prng.int flow_rng (max 1 window_ms)) in
          if not (Ids.Host_id.equal a.Host.id b.Host.id) then
            ignore
              (Engine.schedule engine ~after (fun () ->
                   Plane.start_flow plane ~src:a.Host.id ~dst:b.Host.id
                     ~bytes:20_000 ~packets:10))
        done)
    (Topology.tenants topo);
  let events =
    Scenario.generate
      ~rng:(Prng.named rng "faults")
      ~n_switches:cfg.n_switches cfg.spec
  in
  inject plane cfg ~baseline events;
  (* Settle only after both the last repair and the flow window have
     passed — a fault-free scenario must still see its traffic. *)
  let repair_done =
    Time.add (Engine.now engine)
      (Time.max (Scenario.last_repair events) cfg.spec.Scenario.window)
  in
  Plane.run plane ~until:(Time.add repair_done (Time.of_ms 1));
  let deadline = Time.add repair_done cfg.settle in
  let rec settle () =
    let reports = check_all plane in
    if Invariant.all_ok reports then
      (reports, Some (Time.diff (Engine.now engine) repair_done))
    else if Time.(Engine.now engine >= deadline) then (reports, None)
    else begin
      Plane.run plane ~until:(Time.add (Engine.now engine) cfg.poll);
      settle ()
    end
  in
  let reports, converged_after = settle () in
  let reliability = Plane.reliability_stats plane in
  let switch_stats = Plane.switch_stats_sum plane in
  let member_stats = Plane.member_stats_sum plane in
  let hosts = Plane.host_model plane in
  let flows_started = Host_model.flows_started hosts in
  let flows_delivered = Host_model.flows_delivered hosts in
  let resolutions_failed = Host_model.resolutions_failed hosts in
  let s = switch_stats in
  let datapath =
    s.Edge_switch.flow_table_handled + s.Edge_switch.lfib_handled
    + s.Edge_switch.gfib_handled + s.Edge_switch.punted
  in
  let involvement =
    float_of_int s.Edge_switch.punted /. float_of_int (max 1 datapath)
  in
  let fingerprint =
    fingerprint_of ~events ~reports ~converged_after ~reliability ~switch_stats
      ~member_stats ~flows_started ~flows_delivered ~resolutions_failed
      ~at:(Engine.now engine)
  in
  {
    events;
    reports;
    converged_after;
    reliability;
    switch_stats;
    member_stats;
    flows_started;
    flows_delivered;
    resolutions_failed;
    involvement;
    fingerprint;
  }
