(** Whole-network wiring for a controller cluster.

    Like {!Lazyctrl_core.Network} in lazy mode, but with [n_members]
    controller instances instead of one. Every member has its own pair of
    control channels to every switch (master spoke plus slave spokes used
    only for OAM probing), and the members are joined by a full mesh of
    coordination channels carrying {!Coord} messages.

    The management plane — the [uplink] (current master) and [term]
    (mastership generation) per switch — lives here, mirroring how real
    deployments arbitrate mastership below the controller applications
    (OpenFlow role/generation_id). A {!Coord.view_entry} claim is applied
    synchronously at claim time: stale terms are rejected with feedback,
    winning claims flip the uplink and forward the {!Lazyctrl_switch.Proto.Rehome}
    to the switch on the new master's FIFO channel, ahead of the config
    push that follows. Messages from a stale master are discarded on
    arrival, so a switch never acts on two masters at once. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_core

type t

val create :
  ?params:Params.t ->
  ?controller_config:Controller.config ->
  ?member_config:Member.config ->
  ?coord_latency:Time.t ->
  n_members:int ->
  topo:Topology.t ->
  unit ->
  t
(** Builds switches, the per-member channel fabric, the coordination
    mesh, controllers, members, underlay and host model.
    [coord_latency] (default 500 µs) is the inter-controller link
    latency. @raise Invalid_argument when [n_members < 2]. *)

val bootstrap : t -> unit
(** Run IniGroup over the placement-derived intensity prior, assign group
    [g] to member [g mod n_members], seed the management plane, and start
    every member (each claims and configures its own slice). *)

val engine : t -> Engine.t
val topology : t -> Topology.t
val host_model : t -> Host_model.t
val n_members : t -> int
val run : t -> until:Time.t -> unit

val controller : t -> int -> Controller.t
val member : t -> int -> Member.t
val edge_switch : t -> Ids.Switch_id.t -> Edge_switch.t

val alive_members : t -> int list
(** Ascending member indices currently alive. *)

val uplink_of : t -> Ids.Switch_id.t -> int
(** The member currently mastering the switch (management-plane truth). *)

val term_of : t -> Ids.Switch_id.t -> int

val live_switches : t -> (Ids.Switch_id.t * Edge_switch.t) list

val start_flow :
  t -> src:Ids.Host_id.t -> dst:Ids.Host_id.t -> bytes:int -> packets:int -> unit

(** {1 Fault injection} *)

val kill_member : t -> int -> unit
(** Kill a cluster member: its switch channels and coordination links go
    down, its timers stop, its groups are orphaned. Idempotent. *)

val revive_member : t -> int -> unit
(** Bring a killed member back: links repaired, member restarted owning
    nothing (EASM refills it). Also clears any partition. Idempotent. *)

val partition_member : t -> int -> unit
(** Cut the member off the coordination mesh only — its switch spokes
    stay up, so both sides of the split keep running until terms
    reconcile at heal time. Idempotent. *)

val heal_member : t -> int -> unit

val fail_switch : t -> Ids.Switch_id.t -> unit
val repair_switch : t -> Ids.Switch_id.t -> unit

val set_control_loss : t -> Lazyctrl_openflow.Channel.loss_spec option -> unit
(** Loss model on every switch ↔ member control channel. The coordination
    mesh is deliberately loss-free (inter-controller links are reliable
    transports in deployment); it only goes down under faults. *)

val set_peer_loss : t -> Lazyctrl_openflow.Channel.loss_spec option -> unit

(** {1 Aggregate accounting} *)

val switch_stats_sum : t -> Edge_switch.stats

val ctrl_bytes_sent : t -> int
(** Encoded bytes offered on the switch-facing control spokes of every
    member (both directions).  The coordination mesh is value-passing and
    deliberately uncounted — management-plane traffic between controller
    processes, not switch-facing control load (DESIGN.md §13). *)

val reliability_stats : t -> Lazyctrl_openflow.Reliable.stats
(** Aggregate over every reliable session anywhere in the cluster:
    controller-side, switch-side, and the inter-member coordination
    sessions. [violations = 0] is the cluster-wide exactly-once audit. *)

val member_stats_sum : t -> Member.stats
