open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_controller
module Det = Lazyctrl_util.Det
module Sid = Ids.Switch_id
module Gid = Ids.Group_id

type config = {
  hello_period : Time.t;
  hello_timeout : Time.t;
  probe_window : Time.t;
  migrate_period : Time.t;
  migrate_gap : int;
  migrate_cooldown : Time.t;
  retrans : Reliable.config;
}

let default_config =
  {
    hello_period = Time.of_sec 1;
    hello_timeout = Time.of_ms 3_500;
    probe_window = Time.of_ms 1_500;
    migrate_period = Time.of_sec 5;
    migrate_gap = 2;
    migrate_cooldown = Time.of_sec 20;
    retrans = Reliable.default_config;
  }

type env = {
  engine : Engine.t;
  self : int;
  n_members : int;
  controller : Controller.t;
  send_coord : int -> Coord.t -> bool;
  send_rehome : Ids.Switch_id.t -> term:int -> int;
  probe_switch : Ids.Switch_id.t -> unit;
}

type stats = {
  hellos_sent : int;
  rehomes_sent : int;
  adoptions : int;
  releases : int;
  handoffs_offered : int;
  peer_deaths : int;
  peer_revivals : int;
  controller_failure_verdicts : int;
}

type peer = {
  mutable last_seen : Time.t;
  mutable p_load : int;
  mutable p_alive : bool;
}

type probe = {
  pr_group : Gid.t;
  pr_members : Sid.t list;
  pr_term : int;  (** the orphaned claim's term when the probe started *)
  mutable pr_replied : Sid.Set.t;
}

type t = {
  env : env;
  config : config;
  view : (int, Coord.view_entry) Hashtbl.t;  (* keyed by Gid.to_int *)
  peers : peer array;  (* self slot unused *)
  sessions : Coord.t Reliable.t option array;
  probes : (int, probe) Hashtbl.t;
  mutable timers : Engine.event_id list;
  mutable running : bool;
  mutable last_migration : Time.t;
  mutable s_hellos : int;
  mutable s_rehomes : int;
  mutable s_adoptions : int;
  mutable s_releases : int;
  mutable s_handoffs : int;
  mutable s_deaths : int;
  mutable s_revivals : int;
  mutable s_ctrl_verdicts : int;
}

let now t = Engine.now t.env.engine
let is_running t = t.running

let create env config =
  {
    env;
    config;
    view = Hashtbl.create 16;
    peers =
      Array.init env.n_members (fun _ ->
          { last_seen = Time.zero; p_load = 0; p_alive = true });
    sessions = Array.make env.n_members None;
    probes = Hashtbl.create 8;
    timers = [];
    running = false;
    last_migration = Time.zero;
    s_hellos = 0;
    s_rehomes = 0;
    s_adoptions = 0;
    s_releases = 0;
    s_handoffs = 0;
    s_deaths = 0;
    s_revivals = 0;
    s_ctrl_verdicts = 0;
  }

let session t k =
  match t.sessions.(k) with
  | Some s -> s
  | None ->
      let s =
        Reliable.create t.env.engine t.config.retrans
          ~send_data:(fun ~epoch ~seq payload ->
            ignore (t.env.send_coord k (Coord.Seq { epoch; seq; payload })))
          ~send_ack:(fun ~epoch ~cum ->
            ignore (t.env.send_coord k (Coord.Ack { epoch; cum })))
          ~name:(Printf.sprintf "coord-%d-%d" t.env.self k)
          ()
      in
      t.sessions.(k) <- Some s;
      s

let send_reliable t k msg = Reliable.send (session t k) msg

let view t = List.map snd (Det.bindings_sorted ~cmp:Int.compare t.view)

let owned t =
  List.filter_map
    (fun (e : Coord.view_entry) ->
      if e.v_owner = t.env.self then Some (e.v_group, e.v_members) else None)
    (view t)

let alive_peers t =
  let out = ref [] in
  for k = t.env.n_members - 1 downto 0 do
    if k <> t.env.self && t.peers.(k).p_alive then out := k :: !out
  done;
  !out

(* Owned-group counts derived from the shared view — every member computes
   the same numbers, which makes successor choice consistent without any
   extra agreement round. *)
let load_table t =
  let load = Array.make t.env.n_members 0 in
  Det.iter_sorted ~cmp:Int.compare
    (fun _ (e : Coord.view_entry) -> load.(e.v_owner) <- load.(e.v_owner) + 1)
    t.view;
  load

let my_load t = (load_table t).(t.env.self)

(* The next claim term above [base] that is ≡ self (mod n): strictly
   increasing, and no two members can ever produce the same term. *)
let next_term t base =
  let n = t.env.n_members in
  let c = base + 1 in
  c + (((t.env.self - (c mod n)) + n) mod n)

(* Claim a group: pick a fresh term, flip the switches through the
   management plane, then configure them at our controller and announce.
   The Rehome claim and the subsequent Group_config travel the same FIFO
   control channel, so the switch flips masters before the config lands.
   A higher feedback term means the claim lost a race — the winner is
   identified by term mod n and recorded instead. *)
let adopt t ~group ~members ~base_term =
  let term = next_term t base_term in
  let feedback =
    List.fold_left
      (fun acc sw ->
        t.s_rehomes <- t.s_rehomes + 1;
        max acc (t.env.send_rehome sw ~term))
      term members
  in
  let key = Gid.to_int group in
  if feedback > term then
    Hashtbl.replace t.view key
      {
        Coord.v_group = group;
        v_term = feedback;
        v_owner = feedback mod t.env.n_members;
        v_members = members;
      }
  else begin
    Hashtbl.replace t.view key
      {
        Coord.v_group = group;
        v_term = term;
        v_owner = t.env.self;
        v_members = members;
      };
    Controller.adopt_groups t.env.controller ~groups:[ (group, members) ];
    t.s_adoptions <- t.s_adoptions + 1;
    let entry = Hashtbl.find t.view key in
    List.iter
      (fun k -> send_reliable t k (Coord.Claimed { from = t.env.self; entry }))
      (alive_peers t)
  end

(* Fold a peer's claim into the view; strictly higher terms win. Losing a
   group we currently master means releasing it at the controller. *)
let reconcile t (e : Coord.view_entry) =
  let key = Gid.to_int e.Coord.v_group in
  match Hashtbl.find_opt t.view key with
  | Some cur when cur.Coord.v_term >= e.Coord.v_term -> ()
  | cur_opt ->
      (match cur_opt with
      | Some cur
        when cur.Coord.v_owner = t.env.self && e.Coord.v_owner <> t.env.self ->
          ignore (Controller.release_group t.env.controller e.Coord.v_group);
          t.s_releases <- t.s_releases + 1
      | _ -> ());
      Hashtbl.replace t.view key e

(* --- second-spoke probing before failover adoption ----------------------- *)

let note_probe_reply t sw =
  Det.iter_sorted ~cmp:Int.compare
    (fun _ pr ->
      if List.exists (Sid.equal sw) pr.pr_members then
        pr.pr_replied <- Sid.Set.add sw pr.pr_replied)
    t.probes

let conclude_probe t key =
  match Hashtbl.find_opt t.probes key with
  | None -> ()
  | Some pr ->
      Hashtbl.remove t.probes key;
      if t.running then
        match Hashtbl.find_opt t.view key with
        | Some cur
          when cur.Coord.v_term = pr.pr_term
               && cur.Coord.v_owner <> t.env.self
               && not t.peers.(cur.Coord.v_owner).p_alive ->
            (* Extended Table I, per orphaned switch: alive on the second
               spoke + master silent ⟹ Controller_failure (re-home). A
               switch that did not answer may itself be down — it is
               adopted anyway; the new master's monitor takes over its
               reboot-and-resync handling. *)
            List.iter
              (fun sw ->
                let obs =
                  {
                    Failover.up_lost = false;
                    down_lost = false;
                    ctrl_lost = true;
                    peer_answering = Sid.Set.mem sw pr.pr_replied;
                    master_silent = true;
                  }
                in
                if
                  Failover.verdict_equal (Failover.infer obs)
                    Failover.Controller_failure
                then t.s_ctrl_verdicts <- t.s_ctrl_verdicts + 1)
              pr.pr_members;
            adopt t ~group:pr.pr_group ~members:pr.pr_members
              ~base_term:pr.pr_term
        | _ -> () (* claimed by someone else (or revived) meanwhile *)

let start_probe t (e : Coord.view_entry) =
  let key = Gid.to_int e.Coord.v_group in
  if not (Hashtbl.mem t.probes key) then begin
    Hashtbl.replace t.probes key
      {
        pr_group = e.Coord.v_group;
        pr_members = e.Coord.v_members;
        pr_term = e.Coord.v_term;
        pr_replied = Sid.Set.empty;
      };
    List.iter t.env.probe_switch e.Coord.v_members;
    ignore
      (Engine.schedule t.env.engine ~after:t.config.probe_window (fun () ->
           conclude_probe t key))
  end

(* --- periodic work ------------------------------------------------------- *)

(* Groups whose recorded owner is a dead peer: deterministically assign a
   successor (lowest load, then lowest index, over the alive members) and
   probe the ones assigned to us. Runs every hello tick while the owner
   stays dead, so a claim that lost against a winner who then also died
   is retried rather than orphaned forever. *)
let orphan_sweep t =
  let orphans =
    List.filter
      (fun (e : Coord.view_entry) ->
        e.v_owner <> t.env.self && not t.peers.(e.v_owner).p_alive)
      (view t)
  in
  match orphans with
  | [] -> ()
  | orphans -> begin
    let load = load_table t in
    let candidates = t.env.self :: alive_peers t in
    List.iter
      (fun (e : Coord.view_entry) ->
        let successor =
          List.fold_left
            (fun best c ->
              if (load.(c), c) < (load.(best), best) then c else best)
            (List.hd candidates) (List.tl candidates)
        in
        load.(successor) <- load.(successor) + 1;
        if successor = t.env.self then start_probe t e)
      orphans
  end

let peer_down t k =
  let p = t.peers.(k) in
  if p.p_alive then begin
    p.p_alive <- false;
    t.s_deaths <- t.s_deaths + 1
  end

(* A peer came back (reboot or partition heal): it may have missed claims
   and C-LIB gossip arbitrarily. Reset our outgoing session (fresh epoch;
   the stale unacked backlog predates the outage and is superseded by the
   resync), re-send our complete ownership slice reliably, and re-send
   full C-LIB rows for every switch we master. *)
let peer_up t k =
  let p = t.peers.(k) in
  if not p.p_alive then begin
    p.p_alive <- true;
    t.s_revivals <- t.s_revivals + 1;
    (match t.sessions.(k) with Some s -> Reliable.reset s | None -> ());
    let mine =
      List.filter
        (fun (e : Coord.view_entry) -> e.v_owner = t.env.self)
        (view t)
    in
    send_reliable t k (Coord.Owner_view { from = t.env.self; view = mine });
    let clib = Controller.clib t.env.controller in
    List.iter
      (fun (e : Coord.view_entry) ->
        List.iter
          (fun sw ->
            let delta =
              {
                Proto.origin = sw;
                added = Clib.row clib sw;
                removed = [];
                full = true;
              }
            in
            ignore
              (t.env.send_coord k (Coord.Clib_delta { from = t.env.self; delta })))
          e.v_members)
      mine
  end

let hello_tick t =
  if t.running then begin
    let load = my_load t in
    for k = 0 to t.env.n_members - 1 do
      if k <> t.env.self then begin
        t.s_hellos <- t.s_hellos + 1;
        ignore (t.env.send_coord k (Coord.Hello { from = t.env.self; load }))
      end
    done;
    (* Re-announce mastership of every owned switch. Idempotent (switches
       ignore non-greater terms) and self-healing: it re-claims rebooted
       switches, and the term feedback tells us when we silently lost a
       group to a higher claim. *)
    Det.iter_sorted ~cmp:Int.compare
      (fun key (e : Coord.view_entry) ->
        if e.v_owner = t.env.self then begin
          let feedback =
            List.fold_left
              (fun acc sw ->
                t.s_rehomes <- t.s_rehomes + 1;
                max acc (t.env.send_rehome sw ~term:e.v_term))
              e.v_term e.v_members
          in
          if feedback > e.v_term then begin
            ignore (Controller.release_group t.env.controller e.v_group);
            t.s_releases <- t.s_releases + 1;
            Hashtbl.replace t.view key
              {
                e with
                Coord.v_term = feedback;
                v_owner = feedback mod t.env.n_members;
              }
          end
        end)
      t.view;
    (* Death detection, then the orphan sweep over everything dead. *)
    Array.iteri
      (fun k p ->
        if
          k <> t.env.self && p.p_alive
          && Time.(Time.diff (now t) p.last_seen > t.config.hello_timeout)
        then peer_down t k)
      t.peers;
    orphan_sweep t
  end

(* EASM: when our owned-group count exceeds the least-loaded alive peer's
   by the configured gap, offer our highest-numbered group. We keep
   mastering it until the adopter's Claimed lands. *)
let migrate_tick t =
  if t.running then
    match alive_peers t with
    | [] -> ()
    | peers ->
        let load = load_table t in
        let target =
          List.fold_left
            (fun best c ->
              if (load.(c), c) < (load.(best), best) then c else best)
            (List.hd peers) (List.tl peers)
        in
        if
          load.(t.env.self) - load.(target) >= t.config.migrate_gap
          && Time.(
               Time.diff (now t) t.last_migration >= t.config.migrate_cooldown)
        then
          match List.rev (owned t) with
          | [] -> ()
          | (gid, _) :: _ ->
              let entry = Hashtbl.find t.view (Gid.to_int gid) in
              t.last_migration <- now t;
              t.s_handoffs <- t.s_handoffs + 1;
              send_reliable t target
                (Coord.Handoff { from = t.env.self; entry })

(* --- message handling ---------------------------------------------------- *)

let handle_payload t ~from:_ msg =
  match msg with
  | Coord.Hello { from; load } -> t.peers.(from).p_load <- load
  | Coord.Clib_delta { delta; _ } ->
      Controller.apply_remote_delta t.env.controller delta
  | Coord.Arp_relay { origin; packet; _ } ->
      Controller.handle_remote_arp t.env.controller ~origin packet
  | Coord.Owner_view { view; _ } -> List.iter (reconcile t) view
  | Coord.Claimed { entry; _ } -> reconcile t entry
  | Coord.Handoff { entry; _ } ->
      (* Accept the offer: claim above both the offered term and whatever
         we have seen for the group since. *)
      let base =
        match Hashtbl.find_opt t.view (Gid.to_int entry.Coord.v_group) with
        | Some cur -> max cur.Coord.v_term entry.Coord.v_term
        | None -> entry.Coord.v_term
      in
      adopt t ~group:entry.Coord.v_group ~members:entry.Coord.v_members
        ~base_term:base
  | Coord.Fwd _ -> () (* routed by the plane; never reaches the member *)
  | Coord.Seq _ | Coord.Ack _ -> () (* unwrapped in [handle] *)

let handle t ~from msg =
  if t.running then begin
    t.peers.(from).last_seen <- now t;
    peer_up t from;
    match msg with
    | Coord.Seq { epoch; seq; payload } ->
        List.iter
          (handle_payload t ~from)
          (Reliable.handle_data (session t from) ~epoch ~seq payload)
    | Coord.Ack { epoch; cum } -> Reliable.handle_ack (session t from) ~epoch ~cum
    | msg ->
        (* Any arrival is evidence the link is back. *)
        (match t.sessions.(from) with
        | Some s when Reliable.has_given_up s -> Reliable.kick s
        | _ -> ());
        handle_payload t ~from msg
  end

(* --- lifecycle ----------------------------------------------------------- *)

let arm_timers t =
  t.timers <-
    [
      Engine.every t.env.engine ~period:t.config.hello_period (fun () ->
          hello_tick t);
      Engine.every t.env.engine ~period:t.config.migrate_period (fun () ->
          migrate_tick t);
    ]

let start t ~initial =
  List.iter
    (fun (e : Coord.view_entry) ->
      Hashtbl.replace t.view (Gid.to_int e.Coord.v_group) e)
    initial;
  (* Claim our slice before configuring it, so no switch is ever
     configured by a master it has not accepted. *)
  List.iter
    (fun (e : Coord.view_entry) ->
      if e.v_owner = t.env.self then
        List.iter
          (fun sw ->
            t.s_rehomes <- t.s_rehomes + 1;
            ignore (t.env.send_rehome sw ~term:e.v_term))
          e.v_members)
    (view t);
  Controller.bootstrap_shard t.env.controller ~groups:(owned t);
  let tnow = now t in
  Array.iter
    (fun p ->
      p.last_seen <- tnow;
      p.p_alive <- true)
    t.peers;
  t.last_migration <- tnow;
  t.running <- true;
  arm_timers t

let stop t =
  if t.running then begin
    t.running <- false;
    List.iter (Engine.cancel t.env.engine) t.timers;
    t.timers <- [];
    Hashtbl.reset t.probes;
    (* Drop ownership — the survivors claim these groups; the rest of the
       view is kept as (stale) knowledge for a later restart. *)
    List.iter
      (fun (gid, _) ->
        ignore (Controller.release_group t.env.controller gid);
        Hashtbl.remove t.view (Gid.to_int gid))
      (owned t);
    Controller.shutdown t.env.controller
  end

let restart t =
  if not t.running then begin
    t.running <- true;
    (* Fresh epochs on every outgoing session: the backlog predates the
       outage and peers resync us from scratch anyway. *)
    Array.iter
      (function Some s -> Reliable.reset s | None -> ())
      t.sessions;
    let tnow = now t in
    Array.iter
      (fun p ->
        p.last_seen <- tnow;
        p.p_alive <- true;
        p.p_load <- 0)
      t.peers;
    t.last_migration <- tnow;
    (* Re-arms the controller's echo/daemon timers over the (empty) slice. *)
    Controller.bootstrap_shard t.env.controller ~groups:[];
    arm_timers t
  end

let stats t =
  {
    hellos_sent = t.s_hellos;
    rehomes_sent = t.s_rehomes;
    adoptions = t.s_adoptions;
    releases = t.s_releases;
    handoffs_offered = t.s_handoffs;
    peer_deaths = t.s_deaths;
    peer_revivals = t.s_revivals;
    controller_failure_verdicts = t.s_ctrl_verdicts;
  }

let reliable_stats t =
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some s -> Reliable.stats_add acc (Reliable.stats s))
    Reliable.stats_zero t.sessions
