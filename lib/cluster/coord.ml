open Lazyctrl_net
open Lazyctrl_switch
module Message = Lazyctrl_openflow.Message

type view_entry = {
  v_group : Ids.Group_id.t;
  v_term : int;
  v_owner : int;
  v_members : Ids.Switch_id.t list;
}

type t =
  | Hello of { from : int; load : int }
  | Clib_delta of { from : int; delta : Proto.lfib_delta }
  | Arp_relay of { from : int; origin : Ids.Switch_id.t; packet : Packet.t }
  | Fwd of { from : int; dst : Ids.Switch_id.t; msg : Proto.t Message.t }
  | Owner_view of { from : int; view : view_entry list }
  | Handoff of { from : int; entry : view_entry }
  | Claimed of { from : int; entry : view_entry }
  | Seq of { epoch : int; seq : int; payload : t }
  | Ack of { epoch : int; cum : int }

let entry_size e = 16 + (4 * List.length e.v_members)

let rec size_estimate = function
  | Hello _ -> 10
  | Clib_delta { delta; _ } -> 6 + Proto.size_estimate (Proto.Lfib_advert delta)
  | Arp_relay { packet; _ } -> 12 + Packet.size_on_wire packet
  | Fwd { msg; _ } -> 10 + Message.size_estimate Proto.size_estimate msg
  | Owner_view { view; _ } ->
      6 + List.fold_left (fun acc e -> acc + entry_size e) 0 view
  | Handoff { entry; _ } | Claimed { entry; _ } -> 6 + entry_size entry
  | Seq { payload; _ } -> 12 + size_estimate payload
  | Ack _ -> 12

let pp_entry fmt e =
  Format.fprintf fmt "%a:t%d@c%d(|%d|)" Ids.Group_id.pp e.v_group e.v_term
    e.v_owner (List.length e.v_members)

let rec pp fmt = function
  | Hello { from; load } -> Format.fprintf fmt "hello(c%d,load=%d)" from load
  | Clib_delta { from; delta } ->
      Format.fprintf fmt "clib_delta(c%d,%a)" from Proto.pp
        (Proto.Lfib_advert delta)
  | Arp_relay { from; origin; _ } ->
      Format.fprintf fmt "arp_relay(c%d,origin=%a)" from Ids.Switch_id.pp origin
  | Fwd { from; dst; msg } ->
      Format.fprintf fmt "fwd(c%d,%a,%a)" from Ids.Switch_id.pp dst
        (Message.pp Proto.pp) msg
  | Owner_view { from; view } ->
      Format.fprintf fmt "owner_view(c%d,|%d|)" from (List.length view)
  | Handoff { from; entry } ->
      Format.fprintf fmt "handoff(c%d,%a)" from pp_entry entry
  | Claimed { from; entry } ->
      Format.fprintf fmt "claimed(c%d,%a)" from pp_entry entry
  | Seq { epoch; seq; payload } ->
      Format.fprintf fmt "seq(e%d,#%d,%a)" epoch seq pp payload
  | Ack { epoch; cum } -> Format.fprintf fmt "ack(e%d,<=%d)" epoch cum
