(** The comparison control plane: a Floodlight-style reactive learning
    switch controller.

    The controller learns MAC locations from Packet_in source addresses.
    For a known unicast destination it installs a short-lived exact-match
    rule (Floodlight's 5-second idle timeout) on the punting switch and
    re-injects the packet; for broadcast or unknown destinations it floods
    to every switch in the network — the behaviour whose cost §V-E blames
    for standard OpenFlow's cold-cache latency. *)

open Lazyctrl_net
open Lazyctrl_sim

type msg = Of_switch.msg

type env = {
  engine : Engine.t;
  send_switch : Ids.Switch_id.t -> msg -> unit;
  n_switches : int;
}

type config = {
  flow_idle_timeout : Time.t; (** default 5 s, as in Floodlight *)
}

val default_config : config

type stats = {
  requests : int;
  packet_ins : int;
  flow_mods_sent : int;
  packet_outs_sent : int;
  buffer_outs_sent : int;
      (** replies that released a parked packet by buffer id (DESIGN.md
          §13) *)
  floods : int;
  learned_macs : int;
}

type t

val create : env -> config -> t

val handle_message : t -> from:Ids.Switch_id.t -> msg -> unit

val locate : t -> Mac.t -> Ids.Switch_id.t option
(** The learned MAC table (for tests). *)

val stats : t -> stats

val set_request_hook : t -> (unit -> unit) -> unit
(** Measurement tap, one call per Packet_in — the Fig. 7 workload
    series for the OpenFlow runs. *)
