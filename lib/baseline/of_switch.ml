open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow

(* See of_switch.mli for the behavioural contract. *)

type msg = unit Message.t

type env = {
  engine : Engine.t;
  send_controller : msg -> unit;
  send_underlay : Packet.t -> unit;
  deliver_local : Host.t -> Packet.t -> unit;
  underlay_ip : Ipv4.t;
}

type stats = {
  packets_from_hosts : int;
  packets_delivered : int;
  encap_sent : int;
  flow_table_handled : int;
  punted : int;
}

type t = {
  env : env;
  table : Flow_table.t;
  ports : (int, Host.t) Hashtbl.t; (* mac -> locally attached host *)
  buffers : Buffer_pool.t;
  mutable s_from_hosts : int;
  mutable s_delivered : int;
  mutable s_encap : int;
  mutable s_flow_table : int;
  mutable s_punted : int;
}

let create env ~flow_table_capacity =
  {
    env;
    table = Flow_table.create ~capacity:flow_table_capacity ();
    ports = Hashtbl.create 32;
    buffers = Buffer_pool.create ~ttl:(Time.of_sec 1) ();
    s_from_hosts = 0;
    s_delivered = 0;
    s_encap = 0;
    s_flow_table = 0;
    s_punted = 0;
  }

let attach_host t (h : Host.t) = Hashtbl.replace t.ports (Mac.to_int h.mac) h

let detach_host t (h : Host.t) = Hashtbl.remove t.ports (Mac.to_int h.mac)

let now t = Engine.now t.env.engine

let deliver t host pkt =
  t.s_delivered <- t.s_delivered + 1;
  t.env.deliver_local host pkt

let flood_local t (eth : Packet.eth) =
  let sender_tenant =
    Option.map
      (fun (h : Host.t) -> h.tenant)
      (Hashtbl.find_opt t.ports (Mac.to_int eth.src))
  in
  (* Flood in mac order: delivery order is visible in the event stream. *)
  Lazyctrl_util.Det.iter_sorted ~cmp:Int.compare
    (fun _ (h : Host.t) ->
      let same_tenant =
        match sender_tenant with
        | Some ten -> Ids.Tenant_id.equal h.tenant ten
        | None -> true
      in
      if same_tenant && not (Mac.equal h.mac eth.src) then
        deliver t h (Packet.Plain eth))
    t.ports

let apply_actions t packet actions =
  let eth = Packet.eth_of packet in
  List.iter
    (function
      | Action.Deliver hid -> (
          let found =
            Lazyctrl_util.Det.fold_sorted ~cmp:Int.compare
              (fun _ (h : Host.t) acc ->
                if Ids.Host_id.equal h.id hid then Some h else acc)
              t.ports None
          in
          match found with Some h -> deliver t h packet | None -> ())
      | Action.Encap ip ->
          t.s_encap <- t.s_encap + 1;
          t.env.send_underlay
            (Packet.encap ~outer_src:t.env.underlay_ip ~outer_dst:ip eth)
      | Action.Flood_local -> flood_local t eth
      | Action.To_controller ->
          (* Action punts replay controller-injected packets; those never
             come back by id, so they are not worth a buffer slot. *)
          t.s_punted <- t.s_punted + 1;
          t.env.send_controller
            (Message.Packet_in
               {
                 packet;
                 reason = Message.Action_punt;
                 buffer_id = Message.no_buffer;
               })
      | Action.Drop -> ())
    actions

let handle_from_host t (_host : Host.t) packet =
  t.s_from_hosts <- t.s_from_hosts + 1;
  let eth = Packet.eth_of packet in
  match Flow_table.lookup t.table ~now:(now t) eth with
  | Some actions ->
      t.s_flow_table <- t.s_flow_table + 1;
      apply_actions t packet actions
  | None ->
      (* Park the packet and punt headers + buffer id; a full pool falls
         back to punting the whole packet (DESIGN.md §13). *)
      t.s_punted <- t.s_punted + 1;
      let buffer_id =
        match Buffer_pool.store t.buffers ~now:(now t) packet with
        | Some id -> id
        | None -> Message.no_buffer
      in
      t.env.send_controller
        (Message.Packet_in { packet; reason = Message.No_match; buffer_id })

let handle_underlay t packet =
  match packet with
  | Packet.Plain _ -> ()
  | Packet.Encap { inner; _ } -> (
      (* Delivery to the learned port; the physical port mapping plays the
         role of the installed output rule at the last hop. *)
      match Hashtbl.find_opt t.ports (Mac.to_int inner.dst) with
      | Some host -> deliver t host (Packet.Plain inner)
      | None -> ())

let handle_controller_message t msg =
  match msg with
  | Message.Flow_mod (Message.Add entry) ->
      Flow_table.install t.table ~now:(now t) entry
  | Message.Flow_mod (Message.Delete m) ->
      ignore (Flow_table.remove_matching t.table m)
  | Message.Packet_out { packet; actions } -> apply_actions t packet actions
  | Message.Buffer_out { buffer_id; actions } -> (
      match Buffer_pool.take t.buffers ~now:(now t) buffer_id with
      | Some packet -> apply_actions t packet actions
      | None -> ())
  | Message.Echo_request n -> t.env.send_controller (Message.Echo_reply n)
  | Message.Hello | Message.Echo_reply _ | Message.Packet_in _
  | Message.Extension () ->
      ()

let flow_table t = t.table
let buffer_stats t = Buffer_pool.stats t.buffers

let stats t =
  {
    packets_from_hosts = t.s_from_hosts;
    packets_delivered = t.s_delivered;
    encap_sent = t.s_encap;
    flow_table_handled = t.s_flow_table;
    punted = t.s_punted;
  }
