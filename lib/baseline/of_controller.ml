open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
module Sid = Ids.Switch_id

type msg = Of_switch.msg

type env = {
  engine : Engine.t;
  send_switch : Ids.Switch_id.t -> msg -> unit;
  n_switches : int;
}

type config = { flow_idle_timeout : Time.t }

let default_config = { flow_idle_timeout = Time.of_sec 5 }

type stats = {
  requests : int;
  packet_ins : int;
  flow_mods_sent : int;
  packet_outs_sent : int;
  buffer_outs_sent : int;
  floods : int;
  learned_macs : int;
}

type t = {
  env : env;
  config : config;
  learned : (int, Sid.t) Hashtbl.t; (* mac -> switch *)
  mutable request_hook : unit -> unit;
  mutable s_requests : int;
  mutable s_packet_ins : int;
  mutable s_flow_mods : int;
  mutable s_packet_outs : int;
  mutable s_buffer_outs : int;
  mutable s_floods : int;
}

let create env config =
  {
    env;
    config;
    learned = Hashtbl.create 1024;
    request_hook = (fun () -> ());
    s_requests = 0;
    s_packet_ins = 0;
    s_flow_mods = 0;
    s_packet_outs = 0;
    s_buffer_outs = 0;
    s_floods = 0;
  }

let set_request_hook t f = t.request_hook <- f

let locate t mac = Hashtbl.find_opt t.learned (Mac.to_int mac)

let underlay_ip_of sw = Ipv4.of_switch_id (Sid.to_int sw)

let packet_out t sw packet actions =
  t.s_packet_outs <- t.s_packet_outs + 1;
  t.env.send_switch sw (Message.Packet_out { packet; actions })

(* Replies to the punting switch release the parked packet by buffer id
   when the punt was buffered; copies aimed at other switches must carry
   the packet — only the punting switch holds the buffer. *)
let reply_to_punt t sw ~buffer_id packet actions =
  if buffer_id <> Message.no_buffer then begin
    t.s_buffer_outs <- t.s_buffer_outs + 1;
    t.env.send_switch sw (Message.Buffer_out { buffer_id; actions })
  end
  else packet_out t sw packet actions

let flood_everywhere t ~from ~buffer_id packet =
  t.s_floods <- t.s_floods + 1;
  for i = 0 to t.env.n_switches - 1 do
    let sw = Sid.of_int i in
    if not (Sid.equal sw from) then packet_out t sw packet [ Action.Flood_local ]
  done;
  (* Also out of the ingress switch's other local ports. *)
  reply_to_punt t from ~buffer_id packet [ Action.Flood_local ]

let handle_packet_in t ~from ~buffer_id packet =
  t.s_packet_ins <- t.s_packet_ins + 1;
  let eth = Packet.eth_of packet in
  Hashtbl.replace t.learned (Mac.to_int eth.Packet.src) from;
  if Mac.is_broadcast eth.Packet.dst then flood_everywhere t ~from ~buffer_id packet
  else
    match locate t eth.Packet.dst with
    | None -> flood_everywhere t ~from ~buffer_id packet
    | Some target when Sid.equal target from ->
        (* Same-switch pair: have the switch put it out the local ports. *)
        reply_to_punt t from ~buffer_id packet [ Action.Flood_local ]
    | Some target ->
        t.s_flow_mods <- t.s_flow_mods + 1;
        t.env.send_switch from
          (Message.Flow_mod
             (Message.Add
                {
                  Flow_table.priority = 10;
                  ofmatch =
                    Ofmatch.exact_pair ~src:eth.Packet.src ~dst:eth.Packet.dst;
                  actions = [ Action.Encap (underlay_ip_of target) ];
                  idle_timeout = Some t.config.flow_idle_timeout;
                  hard_timeout = None;
                  cookie = 1;
                }));
        reply_to_punt t from ~buffer_id packet
          [ Action.Encap (underlay_ip_of target) ]

let handle_message t ~from msg =
  match msg with
  | Message.Packet_in { packet; buffer_id; _ } ->
      t.s_requests <- t.s_requests + 1;
      t.request_hook ();
      handle_packet_in t ~from ~buffer_id packet
  | Message.Echo_reply _ | Message.Hello | Message.Echo_request _
  | Message.Packet_out _ | Message.Buffer_out _ | Message.Flow_mod _
  | Message.Extension () ->
      ()

let stats t =
  {
    requests = t.s_requests;
    packet_ins = t.s_packet_ins;
    flow_mods_sent = t.s_flow_mods;
    packet_outs_sent = t.s_packet_outs;
    buffer_outs_sent = t.s_buffer_outs;
    floods = t.s_floods;
    learned_macs = Hashtbl.length t.learned;
  }
