(** The comparison data plane: a plain OpenFlow v1.0 edge switch.

    No L-FIB, no G-FIB, no peer state — every decision comes from the
    flow table, and a table miss punts the packet to the controller, as in
    the paper's "standard OpenFlow control" runs. The only local knowledge
    is the physical port map (which hosts are plugged in), used to realize
    output and flood actions and last-hop delivery of encapsulated
    frames. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow

type msg = unit Message.t
(** Baseline messages carry no protocol extensions. *)

type env = {
  engine : Engine.t;
  send_controller : msg -> unit;
  send_underlay : Packet.t -> unit;
  deliver_local : Host.t -> Packet.t -> unit;
  underlay_ip : Ipv4.t;
}

type stats = {
  packets_from_hosts : int;
  packets_delivered : int;
  encap_sent : int;
  flow_table_handled : int;
  punted : int;
}

type t

val create : env -> flow_table_capacity:int -> t
val attach_host : t -> Host.t -> unit
val detach_host : t -> Host.t -> unit
val handle_from_host : t -> Host.t -> Packet.t -> unit
val handle_underlay : t -> Packet.t -> unit
val handle_controller_message : t -> msg -> unit
val flow_table : t -> Flow_table.t

val buffer_stats : t -> Buffer_pool.stats
(** Occupancy counters of the packet buffer behind buffered table-miss
    punts (64 slots, 1 s ttl — fixed in the baseline plane). *)

val stats : t -> stats
