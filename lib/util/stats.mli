(** Online and batch statistics used by the measurement layer. *)

module Online : sig
  (** Streaming mean/variance via Welford's algorithm, with min/max. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [nan] when empty. *)

  val max : t -> float
  (** [nan] when empty. *)

  val merge : t -> t -> t
  (** Combine two summaries as if their streams were concatenated. *)
end

module Reservoir : sig
  (** Fixed-size uniform reservoir sample; supports percentile queries over
      unbounded streams with bounded memory. *)

  type t

  val create : ?capacity:int -> Prng.t -> t
  (** Default capacity 4096. *)

  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t 0.99] — linear interpolation between order statistics of
      the retained sample. [nan] when empty. Argument in [\[0,1\]]. *)

  val mean : t -> float
end

module Histogram : sig
  (** Fixed-width linear histogram with overflow bucket. *)

  type t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> int array
  (** [buckets + 2] entries: underflow, the buckets, overflow. *)

  val bucket_bounds : t -> (float * float) array
end

module Timeseries : sig
  (** Accumulates per-bucket event counts and value sums over a time axis —
      used for the paper's per-2-hour workload and latency series. *)

  type t

  val create : bucket_width:float -> n_buckets:int -> t
  val record : t -> time:float -> float -> unit
  (** Adds a value at [time]; out-of-range times are clamped to the first or
      last bucket. *)

  val record_n : t -> time:float -> n:int -> float -> unit
  (** Adds [n] identical observations at once (bulk accounting for
      packets that are not individually simulated). *)

  val counts : t -> int array
  val sums : t -> float array
  val means : t -> float array
  (** Per-bucket mean value; [nan] for empty buckets. *)

  val rates : t -> float array
  (** Per-bucket event count divided by bucket width (events per time
      unit). *)

  val label : t -> int -> string
  (** ["lo-hi"] label of a bucket on the time axis, for table rows. *)
end

val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted a p] with [a] ascending; linear interpolation. *)
