(** Deterministic views over unordered hash tables.

    [Hashtbl] traversal order depends on internal bucket layout (insertion
    history, resizes, hash seed), so any iteration whose body emits events,
    accumulates floats, or otherwise observes order is a reproducibility
    hazard — lazyctrl-lint rule [D001-hashtbl-order]. These helpers
    snapshot the key set, sort it with an explicit comparator, and only
    then visit, making traversal order a pure function of table contents. *)

val sorted_keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** Distinct keys, sorted by [cmp]. *)

val iter_sorted :
  cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted ~cmp f tbl] visits bindings in ascending key order.
    Mutating [tbl] inside [f] is safe: the key set is snapshotted first
    (keys removed by [f] before their visit are skipped). *)

val fold_sorted :
  cmp:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** Fold in ascending key order. *)

val bindings_sorted :
  cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings as a list in ascending key order. *)

val pair_compare : int * int -> int * int -> int
(** Lexicographic comparator for the [(int * int)] keys used by the
    intensity matrices and peer-channel maps. *)
