let percentile_of_sorted a p =
  let n = Array.length a in
  if n = 0 then nan
  else if n = 1 then a.(0)
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let idx = p *. Float.of_int (n - 1) in
    let lo = int_of_float (Float.floor idx) in
    let hi = min (lo + 1) (n - 1) in
    let frac = idx -. Float.of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; mn = nan; mx = nan }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. Float.of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.n = 1 then begin
      t.mn <- x;
      t.mx <- x
    end
    else begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x
    end

  let count t = t.n

  let mean t = if t.n = 0 then 0.0 else t.mean

  let variance t = if t.n < 2 then 0.0 else t.m2 /. Float.of_int (t.n - 1)

  let stddev t = sqrt (variance t)

  let min t = t.mn

  let max t = t.mx

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. Float.of_int b.n /. Float.of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. Float.of_int a.n *. Float.of_int b.n /. Float.of_int n)
      in
      {
        n;
        mean;
        m2;
        mn = Float.min a.mn b.mn;
        mx = Float.max a.mx b.mx;
      }
    end
end

module Reservoir = struct
  type t = {
    rng : Prng.t;
    sample : float array;
    mutable filled : int;
    mutable seen : int;
    mutable sum : float;
  }

  let create ?(capacity = 4096) rng =
    { rng; sample = Array.make capacity 0.0; filled = 0; seen = 0; sum = 0.0 }

  let add t x =
    t.seen <- t.seen + 1;
    t.sum <- t.sum +. x;
    let cap = Array.length t.sample in
    if t.filled < cap then begin
      t.sample.(t.filled) <- x;
      t.filled <- t.filled + 1
    end
    else begin
      let j = Prng.int t.rng t.seen in
      if j < cap then t.sample.(j) <- x
    end

  let count t = t.seen

  let percentile t p =
    if t.filled = 0 then nan
    else begin
      let a = Array.sub t.sample 0 t.filled in
      Array.sort Float.compare a;
      percentile_of_sorted a p
    end

  let mean t = if t.seen = 0 then nan else t.sum /. Float.of_int t.seen
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    counts : int array; (* underflow; buckets; overflow *)
    mutable total : int;
  }

  let create ~lo ~hi ~buckets =
    assert (hi > lo && buckets > 0);
    {
      lo;
      hi;
      width = (hi -. lo) /. Float.of_int buckets;
      counts = Array.make (buckets + 2) 0;
      total = 0;
    }

  let add t x =
    t.total <- t.total + 1;
    let buckets = Array.length t.counts - 2 in
    let idx =
      if x < t.lo then 0
      else if x >= t.hi then buckets + 1
      else 1 + int_of_float ((x -. t.lo) /. t.width)
    in
    let idx = min idx (buckets + 1) in
    t.counts.(idx) <- t.counts.(idx) + 1

  let count t = t.total

  let bucket_counts t = Array.copy t.counts

  let bucket_bounds t =
    let buckets = Array.length t.counts - 2 in
    Array.init (buckets + 2) (fun i ->
        if i = 0 then (neg_infinity, t.lo)
        else if i = buckets + 1 then (t.hi, infinity)
        else
          let lo = t.lo +. (Float.of_int (i - 1) *. t.width) in
          (lo, lo +. t.width))
end

module Timeseries = struct
  type t = {
    bucket_width : float;
    counts : int array;
    sums : float array;
  }

  let create ~bucket_width ~n_buckets =
    assert (bucket_width > 0.0 && n_buckets > 0);
    { bucket_width; counts = Array.make n_buckets 0; sums = Array.make n_buckets 0.0 }

  let bucket t time =
    let n = Array.length t.counts in
    let i = int_of_float (time /. t.bucket_width) in
    if i < 0 then 0 else if i >= n then n - 1 else i

  let record t ~time v =
    let i = bucket t time in
    t.counts.(i) <- t.counts.(i) + 1;
    t.sums.(i) <- t.sums.(i) +. v

  let record_n t ~time ~n v =
    if n > 0 then begin
      let i = bucket t time in
      t.counts.(i) <- t.counts.(i) + n;
      t.sums.(i) <- t.sums.(i) +. (Float.of_int n *. v)
    end

  let counts t = Array.copy t.counts

  let sums t = Array.copy t.sums

  let means t =
    Array.mapi
      (fun i c -> if c = 0 then nan else t.sums.(i) /. Float.of_int c)
      t.counts

  let rates t =
    Array.map (fun c -> Float.of_int c /. t.bucket_width) t.counts

  let label t i =
    let lo = t.bucket_width *. Float.of_int i in
    let hi = lo +. t.bucket_width in
    Printf.sprintf "%g-%g" lo hi
end
