(** Deterministic splittable pseudo-random number generator.

    All randomness in the library flows through this module so that every
    simulation and experiment is reproducible from a single integer seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    fast, well-distributed 64-bit generator with an O(1) [split] operation
    that derives statistically independent child streams, which lets each
    simulated component own a private stream without global sequencing. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed. Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent from the
    future output of [t]. Advances [t] by one step. *)

val named : t -> string -> t
(** [named t label] derives a child stream keyed by [label]; the same parent
    seed and label always yield the same stream, independent of the order in
    which other named streams are drawn. Does not advance [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto (heavy-tail) sample; used for flow sizes. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_distinct : t -> n:int -> bound:int -> int list
(** [sample_distinct t ~n ~bound] draws [n] distinct integers from
    [\[0, bound)]. Requires [n <= bound]. O(n) expected when [n] is small
    relative to [bound], O(bound) otherwise. *)

module Zipf : sig
  type gen = t

  type t
  (** Precomputed Zipf(α) sampler over ranks [0..n-1]: rank [r] has
      probability proportional to [1 / (r+1)^alpha]. *)

  val create : n:int -> alpha:float -> t
  val draw : t -> gen -> int
end
