type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t = t.size <- 0

let to_sorted_list t =
  let copy = { t with data = Array.sub t.data 0 t.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

module Flat = struct
  type t = {
    mutable time : int array;
    mutable seq : int array;
    mutable payload : int array;
    mutable size : int;
  }

  let create ?(capacity = 16) () =
    let capacity = max capacity 1 in
    {
      time = Array.make capacity 0;
      seq = Array.make capacity 0;
      payload = Array.make capacity 0;
      size = 0;
    }

  let length t = t.size
  let is_empty t = t.size = 0
  let clear t = t.size <- 0

  let grow t =
    let ncap = 2 * Array.length t.time in
    let ntime = Array.make ncap 0
    and nseq = Array.make ncap 0
    and npayload = Array.make ncap 0 in
    Array.blit t.time 0 ntime 0 t.size;
    Array.blit t.seq 0 nseq 0 t.size;
    Array.blit t.payload 0 npayload 0 t.size;
    t.time <- ntime;
    t.seq <- nseq;
    t.payload <- npayload

  let min_time t =
    if t.size = 0 then invalid_arg "Heap.Flat.min_time: empty heap";
    Array.unsafe_get t.time 0

  let min_seq t =
    if t.size = 0 then invalid_arg "Heap.Flat.min_seq: empty heap";
    Array.unsafe_get t.seq 0

  let min_payload t =
    if t.size = 0 then invalid_arg "Heap.Flat.min_payload: empty heap";
    Array.unsafe_get t.payload 0

  (* Hole-bubbling sift: the inserted/relocated element is kept in
     registers while parents (resp. smaller children) slide into the
     hole, halving the array writes of a swap-based sift. All indices
     stay within [0, size), so unsafe accesses are in bounds. *)

  (* The sift loops recurse on the hole index instead of holding it in a
     local [ref]: push/remove_min run once per simulator event
     (hp-engine-step), and a ref cell is a 2-word minor allocation. *)
  let rec sift_up tm sq pl ~time ~seq i =
    if i = 0 then 0
    else
      let parent = (i - 1) / 2 in
      let pt = Array.unsafe_get tm parent in
      if pt > time || (pt = time && Array.unsafe_get sq parent > seq) then begin
        Array.unsafe_set tm i pt;
        Array.unsafe_set sq i (Array.unsafe_get sq parent);
        Array.unsafe_set pl i (Array.unsafe_get pl parent);
        sift_up tm sq pl ~time ~seq parent
      end
      else i

  let push t ~time ~seq ~payload =
    if t.size = Array.length t.time then grow t;
    let tm = t.time and sq = t.seq and pl = t.payload in
    let start = t.size in
    t.size <- t.size + 1;
    let i = sift_up tm sq pl ~time ~seq start in
    Array.unsafe_set tm i time;
    Array.unsafe_set sq i seq;
    Array.unsafe_set pl i payload

  let rec sift_down tm sq pl ~n ~time ~seq i =
    let l = (2 * i) + 1 in
    if l >= n then i
    else begin
      let r = l + 1 in
      let c =
        if r < n then begin
          let lt = Array.unsafe_get tm l and rt = Array.unsafe_get tm r in
          if
            rt < lt
            || (rt = lt && Array.unsafe_get sq r < Array.unsafe_get sq l)
          then r
          else l
        end
        else l
      in
      let ct = Array.unsafe_get tm c in
      if ct < time || (ct = time && Array.unsafe_get sq c < seq) then begin
        Array.unsafe_set tm i ct;
        Array.unsafe_set sq i (Array.unsafe_get sq c);
        Array.unsafe_set pl i (Array.unsafe_get pl c);
        sift_down tm sq pl ~n ~time ~seq c
      end
      else i
    end

  let remove_min t =
    if t.size = 0 then invalid_arg "Heap.Flat.remove_min: empty heap";
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let tm = t.time and sq = t.seq and pl = t.payload in
      (* Re-insert the last element at the root, bubbling the hole down
         toward the leaves. *)
      let time = Array.unsafe_get tm n
      and seq = Array.unsafe_get sq n
      and payload = Array.unsafe_get pl n in
      let i = sift_down tm sq pl ~n ~time ~seq 0 in
      Array.unsafe_set tm i time;
      Array.unsafe_set sq i seq;
      Array.unsafe_set pl i payload
    end
end

module Indexed = struct
  type t = {
    mutable heap : int array; (* heap position -> key *)
    pos : int array;          (* key -> heap position, -1 if absent *)
    prio : float array;
    mutable size : int;
  }

  let create n = { heap = Array.make (max n 1) 0; pos = Array.make (max n 1) (-1); prio = Array.make (max n 1) 0.0; size = 0 }

  let mem t k = t.pos.(k) >= 0

  let cardinal t = t.size

  let swap t i j =
    let ki = t.heap.(i) and kj = t.heap.(j) in
    t.heap.(i) <- kj;
    t.heap.(j) <- ki;
    t.pos.(kj) <- i;
    t.pos.(ki) <- j

  (* Max-heap ordering on priorities; ties broken by smaller key for
     determinism. *)
  let before t i j =
    let ki = t.heap.(i) and kj = t.heap.(j) in
    let c = Float.compare t.prio.(kj) t.prio.(ki) in
    if c <> 0 then c < 0 else ki < kj

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < t.size && before t l !best then best := l;
    if r < t.size && before t r !best then best := r;
    if !best <> i then begin
      swap t i !best;
      sift_down t !best
    end

  let insert t k p =
    if mem t k then invalid_arg "Heap.Indexed.insert: key already present";
    t.heap.(t.size) <- k;
    t.pos.(k) <- t.size;
    t.prio.(k) <- p;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let priority t k = if mem t k then t.prio.(k) else raise Not_found

  let adjust t k p =
    if not (mem t k) then insert t k p
    else begin
      let old = t.prio.(k) in
      t.prio.(k) <- p;
      if p > old then sift_up t t.pos.(k) else sift_down t t.pos.(k)
    end

  let remove_at t i =
    let k = t.heap.(i) in
    t.size <- t.size - 1;
    t.pos.(k) <- -1;
    if i < t.size then begin
      let last = t.heap.(t.size) in
      t.heap.(i) <- last;
      t.pos.(last) <- i;
      sift_up t i;
      sift_down t i
    end

  let pop_max t =
    if t.size = 0 then None
    else begin
      let k = t.heap.(0) in
      let p = t.prio.(k) in
      remove_at t 0;
      Some (k, p)
    end

  let remove t k = if mem t k then remove_at t t.pos.(k)
end
