(** Open-addressed int-keyed map with allocation-free lookup.

    [Hashtbl.find_opt] allocates a fresh [Some] per hit; here each slot
    stores its binding as an ['a option] built once at insertion and
    {!find} returns that stored option, so lookups allocate nothing.
    Built for the per-packet L-FIB probes flagged by the H00x hot-path
    budget's calibration check.

    Keys [min_int] and [min_int + 1] are reserved internal sentinels;
    passing either raises [Invalid_argument]. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 16) is rounded up to a power of two. *)

val length : 'a t -> int

val find : 'a t -> int -> 'a option
(** Allocation-free: returns the option boxed at insertion time. *)

val mem : 'a t -> int -> bool

val replace : 'a t -> int -> 'a -> unit
(** Insert or overwrite. *)

val remove : 'a t -> int -> unit
(** No-op if the key is absent. *)
