(** Binary min-heaps.

    Two flavours are provided: a plain polymorphic min-heap used by the
    discrete-event scheduler, and an indexed priority queue with
    decrease-key used by graph algorithms (Stoer–Wagner, refinement). *)

type 'a t
(** Min-heap over elements of type ['a] with an explicit comparison. *)

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: elements in ascending order. O(n log n). *)

module Flat : sig
  (** Allocation-free binary min-heap over [(time, seq, payload)] integer
      triples, ordered lexicographically on [(time, seq)]. Backing store
      is three parallel [int] arrays, so pushes and pops allocate nothing
      (amortized; the arrays double on growth). Built for the
      discrete-event scheduler hot path, where the payload is a slot
      index into the engine's event table. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** [create ()] makes an empty heap; [capacity] (default 16) presizes
      the backing arrays. *)

  val length : t -> int
  val is_empty : t -> bool
  val clear : t -> unit

  val push : t -> time:int -> seq:int -> payload:int -> unit

  val min_time : t -> int
  (** @raise Invalid_argument on an empty heap (also the two below). *)

  val min_seq : t -> int
  val min_payload : t -> int

  val remove_min : t -> unit
  (** Drop the minimum element. Read it first via [min_*].
      @raise Invalid_argument on an empty heap. *)
end

module Indexed : sig
  (** Max-priority queue over integer keys [0..n-1] with float priorities
      and O(log n) [increase]/[remove]. Keys may be absent. *)

  type t

  val create : int -> t
  (** [create n] supports keys [0..n-1], initially all absent. *)

  val mem : t -> int -> bool
  val cardinal : t -> int

  val insert : t -> int -> float -> unit
  (** @raise Invalid_argument if the key is already present. *)

  val priority : t -> int -> float
  (** @raise Not_found if absent. *)

  val adjust : t -> int -> float -> unit
  (** [adjust t k p] sets key [k]'s priority to [p] (up or down),
      inserting it if absent. *)

  val pop_max : t -> (int * float) option
  (** Remove and return the key with the largest priority. *)

  val remove : t -> int -> unit
  (** Remove a key if present; no-op otherwise. *)
end
