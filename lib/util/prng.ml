type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

(* FNV-1a over the label, folded into the parent state without advancing it. *)
let named t label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  { state = mix64 (Int64.logxor t.state !h) }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias: retry iff [bits] falls in the
     short final segment [2^63 - (2^63 mod bound), 2^63), detected via the
     signed-overflow trick of [bits - v + (bound - 1)] wrapping negative. *)
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem bits bound64 in
    if Int64.compare (Int64.add (Int64.sub bits v) (Int64.sub bound64 1L)) 0L < 0
    then loop ()
    else Int64.to_int v
  in
  loop ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.compare (bits64 t) 0L < 0

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct t ~n ~bound =
  assert (n <= bound);
  if n * 3 >= bound then begin
    (* Dense case: shuffle a prefix of the full range. *)
    let a = Array.init bound (fun i -> i) in
    shuffle t a;
    Array.to_list (Array.sub a 0 n)
  end
  else begin
    let seen = Hashtbl.create (2 * n) in
    let rec draw acc k =
      if k = 0 then acc
      else
        let v = int t bound in
        if Hashtbl.mem seen v then draw acc k
        else begin
          Hashtbl.add seen v ();
          draw (v :: acc) (k - 1)
        end
    in
    draw [] n
  end

module Zipf = struct
  type gen = t

  type t = { cdf : float array }

  let create ~n ~alpha =
    assert (n > 0);
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for r = 0 to n - 1 do
      acc := !acc +. (1.0 /. (Float.of_int (r + 1) ** alpha));
      cdf.(r) <- !acc
    done;
    let total = !acc in
    for r = 0 to n - 1 do
      cdf.(r) <- cdf.(r) /. total
    done;
    { cdf }

  let draw t gen =
    let u = float gen 1.0 in
    (* Binary search for the first rank whose cdf exceeds u. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
end
