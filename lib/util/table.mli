(** Plain-text aligned tables for experiment output. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val render : t -> string
(** Aligned, pipe-separated rendering with a header rule. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point formatting with [nan] rendered as ["-"]. Default 2
    decimals. *)

val cell_int : int -> string
