type t = {
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let pad_to n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.length t.headers in
  let rows = List.rev_map (pad_to ncols) t.rows in
  let all = t.headers :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let render_row row =
    row
    |> List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell)
    |> String.concat " | "
  in
  let rule =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "-+-"
  in
  String.concat "\n" (render_row t.headers :: rule :: List.map render_row rows)

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(decimals = 2) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let cell_int = string_of_int
