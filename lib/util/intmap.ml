(* Open-addressed int-keyed map with allocation-free lookup.

   [Hashtbl.find_opt] wraps every hit in a fresh [Some] — roughly two
   minor words per lookup, which the H00x hot-path budget surfaced on
   the L-FIB probes (an H004 calibration gap: statically clean, measured
   allocating).  Here each slot stores the binding as an ['a option]
   built once at insertion, and [find] returns that stored option, so a
   lookup allocates nothing at all.

   Linear probing over a power-of-two table with a multiplicative hash;
   deletions leave tombstones that insertion reuses and resizing sweeps.
   Two int keys are reserved as internal sentinels ([min_int] and
   [min_int + 1]); [replace]/[remove]/[find] reject them.  The intended
   keys — MAC/IPv4 integer encodings, ids — are non-negative, far from
   the sentinels. *)

let empty_key = min_int
let tombstone_key = min_int + 1

type 'a t = {
  mutable keys : int array; (* empty_key | tombstone_key | live key *)
  mutable vals : 'a option array; (* Some v exactly at live slots *)
  mutable live : int;
  mutable fill : int; (* live + tombstones; bounds probe length *)
}

let min_capacity = 16

let create ?(capacity = min_capacity) () =
  let rec pow2 n = if n >= capacity || n <= 0 then max n min_capacity else pow2 (2 * n) in
  let cap = pow2 min_capacity in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap None;
    live = 0;
    fill = 0;
  }

let length t = t.live

let check_key k =
  if k == empty_key || k == tombstone_key then
    invalid_arg "Intmap: min_int and min_int+1 are reserved sentinel keys"

(* Knuth-style multiplicative spread, masked into the table: consecutive
   keys (sequential MAC/IP encodings) must not form probe chains. *)
let slot_of k mask = (k * 0x331A6D9B) land mask

(* Fully-applied recursion (no local ref, no closure): [find] is the
   whole point of the module and sits on the per-packet hot path. *)
let rec find_from keys vals mask k i =
  let cur = Array.unsafe_get keys i in
  if cur = k then Array.unsafe_get vals i
  else if cur = empty_key then None
  else find_from keys vals mask k ((i + 1) land mask)

let find t k =
  check_key k;
  let mask = Array.length t.keys - 1 in
  find_from t.keys t.vals mask k (slot_of k mask)

let mem t k = match find t k with Some _ -> true | None -> false

(* Insertion target: the slot holding [k] if bound, else the first
   tombstone on the probe path if any, else the empty slot that ended
   the probe.  [fill < capacity] always holds, so the scan terminates. *)
let rec insert_slot keys mask k i tomb =
  let cur = Array.unsafe_get keys i in
  if cur = k then (i, true)
  else if cur = empty_key then ((if tomb >= 0 then tomb else i), false)
  else if cur = tombstone_key then
    insert_slot keys mask k ((i + 1) land mask)
      (if tomb >= 0 then tomb else i)
  else insert_slot keys mask k ((i + 1) land mask) tomb

let store t k boxed =
  let mask = Array.length t.keys - 1 in
  let i, existed = insert_slot t.keys mask k (slot_of k mask) (-1) in
  let was_tombstone = Array.unsafe_get t.keys i = tombstone_key in
  Array.unsafe_set t.keys i k;
  Array.unsafe_set t.vals i boxed;
  if not existed then begin
    t.live <- t.live + 1;
    if not was_tombstone then t.fill <- t.fill + 1
  end

let rehash t ncap =
  let okeys = t.keys and ovals = t.vals in
  t.keys <- Array.make ncap empty_key;
  t.vals <- Array.make ncap None;
  t.live <- 0;
  t.fill <- 0;
  Array.iteri
    (fun i k ->
      if k <> empty_key && k <> tombstone_key then
        (* Re-store the original boxed option: rehashing reboxes nothing. *)
        store t k (Array.unsafe_get ovals i))
    okeys

let replace t k v =
  check_key k;
  let cap = Array.length t.keys in
  (* Load factor 1/2 over [fill] (tombstones count: they lengthen probe
     chains just like live slots); doubling also sweeps tombstones. *)
  if 2 * (t.fill + 1) > cap then
    rehash t (if 2 * (t.live + 1) > cap then 2 * cap else cap);
  store t k (Some v)

let rec remove_from keys vals mask k i =
  let cur = Array.unsafe_get keys i in
  if cur = k then begin
    Array.unsafe_set keys i tombstone_key;
    Array.unsafe_set vals i None;
    true
  end
  else if cur = empty_key then false
  else remove_from keys vals mask k ((i + 1) land mask)

let remove t k =
  check_key k;
  let mask = Array.length t.keys - 1 in
  if remove_from t.keys t.vals mask k (slot_of k mask) then
    t.live <- t.live - 1
