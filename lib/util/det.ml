(* Deterministic views over unordered hash tables.

   [Hashtbl] iteration order depends on the table's internal layout
   (insertion history, resizes, and — across OCaml versions or with
   [Hashtbl.randomize] — the hash seed), so any [Hashtbl.iter]/[fold]
   whose body emits events, accumulates floats, or otherwise observes
   order is a reproducibility hazard.  These helpers snapshot the key
   set, sort it with an explicit comparator, and only then apply the
   visitor, so the traversal order is a pure function of the table's
   contents. *)

let sorted_keys ~cmp tbl =
  (* lazyctrl-lint D001: the one sanctioned raw fold — it only collects
     keys, and the caller's visit order comes from the sort below. *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort_uniq cmp keys

let iter_sorted ~cmp f tbl =
  List.iter
    (fun k ->
      match Hashtbl.find_opt tbl k with Some v -> f k v | None -> ())
    (sorted_keys ~cmp tbl)

let fold_sorted ~cmp f tbl init =
  List.fold_left
    (fun acc k ->
      match Hashtbl.find_opt tbl k with Some v -> f k v acc | None -> acc)
    init (sorted_keys ~cmp tbl)

let bindings_sorted ~cmp tbl =
  List.rev (fold_sorted ~cmp (fun k v acc -> (k, v) :: acc) tbl [])

(* Lexicographic comparator for the [(int * int)] keys used by the
   intensity matrices and peer-channel maps. *)
let pair_compare (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c
