open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow

(* Frame layouts are specified in DESIGN.md §13; keep both in sync. *)

let version = 1
let header_size = 8

module W = struct
  type t = { buf : bytes; mutable pos : int }

  let create size = { buf = Bytes.create size; pos = 0 }

  let u8 w v =
    Bytes.set_uint8 w.buf w.pos v;
    w.pos <- w.pos + 1

  let u16 w v =
    if v < 0 || v > 0xffff then invalid_arg "Wire.encode: field out of u16 range";
    Bytes.set_uint16_be w.buf w.pos v;
    w.pos <- w.pos + 2

  let u32 w v =
    if v < 0 || v > 0xFFFFFFFF then
      invalid_arg "Wire.encode: field out of u32 range";
    Bytes.set_int32_be w.buf w.pos (Int32.of_int v);
    w.pos <- w.pos + 4

  let i64 w v =
    Bytes.set_int64_be w.buf w.pos (Int64.of_int v);
    w.pos <- w.pos + 8

  let mac w m =
    let v = Mac.to_int m in
    u16 w ((v lsr 32) land 0xffff);
    u32 w (v land 0xFFFFFFFF)

  let ip w v = u32 w (Ipv4.to_int v)

  let pad w n =
    (* The buffer is born zero-filled; padding is a position bump, but
       bound-checked so a mis-sized frame still trips. *)
    if n < 0 || w.pos + n > Bytes.length w.buf then
      invalid_arg "Wire.encode: padding past frame end";
    w.pos <- w.pos + n
end

module R = struct
  type t = { buf : bytes; mutable pos : int }

  let of_bytes buf = { buf; pos = 0 }

  let need r n =
    if n < 0 || r.pos + n > Bytes.length r.buf then
      invalid_arg "Wire.decode: truncated frame"

  let u8 r =
    need r 1;
    let v = Bytes.get_uint8 r.buf r.pos in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    need r 2;
    let v = Bytes.get_uint16_be r.buf r.pos in
    r.pos <- r.pos + 2;
    v

  let u32 r =
    need r 4;
    let v = Int32.to_int (Bytes.get_int32_be r.buf r.pos) land 0xFFFFFFFF in
    r.pos <- r.pos + 4;
    v

  let i64 r =
    need r 8;
    let v = Int64.to_int (Bytes.get_int64_be r.buf r.pos) in
    r.pos <- r.pos + 8;
    v

  let mac r =
    let hi = u16 r in
    let lo = u32 r in
    Mac.of_int ((hi lsl 32) lor lo)

  let ip r = Ipv4.of_int (u32 r)

  let skip r n =
    need r n;
    r.pos <- r.pos + n
end

type 'ext ext = {
  ext_size : 'ext -> int;
  ext_write : W.t -> 'ext -> unit;
  ext_read : R.t -> 'ext;
}

let unit_ext =
  { ext_size = (fun () -> 0); ext_write = (fun _ () -> ()); ext_read = (fun _ -> ()) }

(* --- packets ---------------------------------------------------------- *)

let payload_pad pkt =
  match (Packet.eth_of pkt).Packet.payload with
  | Packet.Ipv4 p -> p.Packet.length
  | Packet.Arp _ -> 0

let packet_size ~full pkt =
  1
  + (match pkt with Packet.Encap _ -> 8 | Packet.Plain _ -> 0)
  + Packet.eth_encoded_size (Packet.eth_of pkt)
  + if full then payload_pad pkt else 0

let write_packet w ~full pkt =
  (match pkt with
  | Packet.Plain e ->
      W.u8 w 0;
      w.W.pos <- Packet.write_eth_to w.W.buf ~pos:w.W.pos e
  | Packet.Encap { outer_src; outer_dst; inner } ->
      W.u8 w 1;
      W.ip w outer_src;
      W.ip w outer_dst;
      w.W.pos <- Packet.write_eth_to w.W.buf ~pos:w.W.pos inner);
  if full then W.pad w (payload_pad pkt)

let read_eth r =
  let e, pos = Packet.read_eth_from r.R.buf ~pos:r.R.pos in
  r.R.pos <- pos;
  e

let read_packet r =
  match R.u8 r with
  | 0 -> Packet.Plain (read_eth r)
  | 1 ->
      let outer_src = R.ip r in
      let outer_dst = R.ip r in
      let inner = read_eth r in
      Packet.Encap { outer_src; outer_dst; inner }
  | _ -> invalid_arg "Wire.decode: bad packet form"

let read_full_packet r =
  let p = read_packet r in
  R.skip r (payload_pad p);
  p

(* --- match ------------------------------------------------------------ *)

let ofmatch_size (m : Ofmatch.t) =
  let opt n = function Some _ -> n | None -> 0 in
  2 + opt 6 m.src_mac + opt 6 m.dst_mac + opt 2 m.vlan + opt 4 m.src_ip
  + opt 4 m.dst_ip + opt 1 m.protocol + opt 2 m.src_port + opt 2 m.dst_port

let write_ofmatch w (m : Ofmatch.t) =
  let bit i = function Some _ -> 1 lsl i | None -> 0 in
  let mask =
    bit 0 m.src_mac lor bit 1 m.dst_mac lor bit 2 m.vlan lor bit 3 m.src_ip
    lor bit 4 m.dst_ip lor bit 5 m.protocol lor bit 6 m.src_port
    lor bit 7 m.dst_port
    lor if m.arp_only then 1 lsl 8 else 0
  in
  W.u16 w mask;
  Option.iter (W.mac w) m.src_mac;
  Option.iter (W.mac w) m.dst_mac;
  Option.iter (W.u16 w) m.vlan;
  Option.iter (W.ip w) m.src_ip;
  Option.iter (W.ip w) m.dst_ip;
  Option.iter (W.u8 w) m.protocol;
  Option.iter (W.u16 w) m.src_port;
  Option.iter (W.u16 w) m.dst_port

let read_ofmatch r : Ofmatch.t =
  let mask = R.u16 r in
  let has i = mask land (1 lsl i) <> 0 in
  let opt i f = if has i then Some (f r) else None in
  let src_mac = opt 0 R.mac in
  let dst_mac = opt 1 R.mac in
  let vlan = opt 2 R.u16 in
  let src_ip = opt 3 R.ip in
  let dst_ip = opt 4 R.ip in
  let protocol = opt 5 R.u8 in
  let src_port = opt 6 R.u16 in
  let dst_port = opt 7 R.u16 in
  {
    src_mac;
    dst_mac;
    vlan;
    src_ip;
    dst_ip;
    protocol;
    src_port;
    dst_port;
    arp_only = has 8;
  }

(* --- actions ---------------------------------------------------------- *)

let action_size = function
  | Action.Deliver _ | Action.Encap _ -> 5
  | Action.Flood_local | Action.To_controller | Action.Drop -> 1

let actions_size actions =
  2 + List.fold_left (fun acc a -> acc + action_size a) 0 actions

let write_action w = function
  | Action.Deliver h ->
      W.u8 w 0;
      W.u32 w (Ids.Host_id.to_int h)
  | Action.Encap ip ->
      W.u8 w 1;
      W.ip w ip
  | Action.Flood_local -> W.u8 w 2
  | Action.To_controller -> W.u8 w 3
  | Action.Drop -> W.u8 w 4

let read_action r =
  match R.u8 r with
  | 0 -> Action.Deliver (Ids.Host_id.of_int (R.u32 r))
  | 1 -> Action.Encap (R.ip r)
  | 2 -> Action.Flood_local
  | 3 -> Action.To_controller
  | 4 -> Action.Drop
  | _ -> invalid_arg "Wire.decode: bad action tag"

let write_actions w actions =
  W.u16 w (List.length actions);
  List.iter (write_action w) actions

let read_actions r =
  let n = R.u16 r in
  List.init n (fun _ -> read_action r)

(* --- flow-table entries ----------------------------------------------- *)

let opt_time_size = function Some _ -> 9 | None -> 1

let write_opt_time w = function
  | Some t ->
      W.u8 w 1;
      W.i64 w (Time.to_ns t)
  | None -> W.u8 w 0

let read_opt_time r =
  match R.u8 r with
  | 0 -> None
  | 1 -> Some (Time.of_ns (R.i64 r))
  | _ -> invalid_arg "Wire.decode: bad timeout presence"

let entry_size (e : Flow_table.entry) =
  2 + 8 + opt_time_size e.idle_timeout + opt_time_size e.hard_timeout
  + ofmatch_size e.ofmatch + actions_size e.actions

let write_entry w (e : Flow_table.entry) =
  W.u16 w e.priority;
  W.i64 w e.cookie;
  write_opt_time w e.idle_timeout;
  write_opt_time w e.hard_timeout;
  write_ofmatch w e.ofmatch;
  write_actions w e.actions

let read_entry r : Flow_table.entry =
  let priority = R.u16 r in
  let cookie = R.i64 r in
  let idle_timeout = read_opt_time r in
  let hard_timeout = read_opt_time r in
  let ofmatch = read_ofmatch r in
  let actions = read_actions r in
  { priority; ofmatch; actions; idle_timeout; hard_timeout; cookie }

(* --- messages --------------------------------------------------------- *)

let body_size ext = function
  | Message.Hello -> 0
  | Message.Echo_request _ | Message.Echo_reply _ -> 8
  | Message.Packet_in { packet; buffer_id; _ } ->
      1 + 8 + packet_size ~full:(buffer_id = Message.no_buffer) packet
  | Message.Packet_out { packet; actions } ->
      actions_size actions + packet_size ~full:true packet
  | Message.Buffer_out { actions; _ } -> 8 + actions_size actions
  | Message.Flow_mod (Message.Add e) -> 1 + entry_size e
  | Message.Flow_mod (Message.Delete m) -> 1 + ofmatch_size m
  | Message.Extension e -> ext.ext_size e

let message_size ext m = 1 + body_size ext m

let write_message ext w m =
  match m with
  | Message.Hello -> W.u8 w 0
  | Message.Echo_request n ->
      W.u8 w 1;
      W.i64 w n
  | Message.Echo_reply n ->
      W.u8 w 2;
      W.i64 w n
  | Message.Packet_in { packet; reason; buffer_id } ->
      W.u8 w 3;
      W.u8 w (match reason with Message.No_match -> 0 | Message.Action_punt -> 1);
      W.i64 w buffer_id;
      write_packet w ~full:(buffer_id = Message.no_buffer) packet
  | Message.Packet_out { packet; actions } ->
      W.u8 w 4;
      write_actions w actions;
      write_packet w ~full:true packet
  | Message.Buffer_out { buffer_id; actions } ->
      W.u8 w 5;
      W.i64 w buffer_id;
      write_actions w actions
  | Message.Flow_mod (Message.Add e) ->
      W.u8 w 6;
      W.u8 w 0;
      write_entry w e
  | Message.Flow_mod (Message.Delete m) ->
      W.u8 w 6;
      W.u8 w 1;
      write_ofmatch w m
  | Message.Extension e ->
      W.u8 w 7;
      ext.ext_write w e

let read_message ext r =
  match R.u8 r with
  | 0 -> Message.Hello
  | 1 -> Message.Echo_request (R.i64 r)
  | 2 -> Message.Echo_reply (R.i64 r)
  | 3 ->
      let reason =
        match R.u8 r with
        | 0 -> Message.No_match
        | 1 -> Message.Action_punt
        | _ -> invalid_arg "Wire.decode: bad packet_in reason"
      in
      let buffer_id = R.i64 r in
      let packet =
        if buffer_id = Message.no_buffer then read_full_packet r
        else read_packet r
      in
      Message.Packet_in { packet; reason; buffer_id }
  | 4 ->
      let actions = read_actions r in
      let packet = read_full_packet r in
      Message.Packet_out { packet; actions }
  | 5 ->
      let buffer_id = R.i64 r in
      let actions = read_actions r in
      Message.Buffer_out { buffer_id; actions }
  | 6 -> (
      match R.u8 r with
      | 0 -> Message.Flow_mod (Message.Add (read_entry r))
      | 1 -> Message.Flow_mod (Message.Delete (read_ofmatch r))
      | _ -> invalid_arg "Wire.decode: bad flow_mod command")
  | 7 -> Message.Extension (ext.ext_read r)
  | _ -> invalid_arg "Wire.decode: unknown message type"

let frame_size ext m = header_size + message_size ext m

let encode ext m =
  let size = frame_size ext m in
  let w = W.create size in
  W.u32 w size;
  W.u8 w version;
  W.u8 w 0;
  W.u16 w 0;
  write_message ext w m;
  assert (w.W.pos = size);
  w.W.buf

let decode ext buf =
  let r = R.of_bytes buf in
  let len = R.u32 r in
  if len <> Bytes.length buf then
    invalid_arg "Wire.decode: frame length mismatch";
  if R.u8 r <> version then invalid_arg "Wire.decode: bad version";
  R.skip r 3;
  let m = read_message ext r in
  if r.R.pos <> Bytes.length buf then
    invalid_arg "Wire.decode: trailing bytes";
  m
