(** Binary OpenFlow wire codec (ROADMAP item 4).

    Turns ['ext Lazyctrl_openflow.Message.t] values into length-prefixed
    binary frames over [Bytes] and back, so control channels carry — and
    can account for — real bytes instead of OCaml values. The normative
    frame layouts (header, PacketIn with buffer_id, FlowMod), the
    switch-side buffering state machine and the byte-accounting points are
    specified in DESIGN.md §13 "Wire format"; this interface documents the
    API contract only.

    Frame shape (big-endian throughout, like {!Lazyctrl_net.Packet}):

    {v
    frame   := length(u32, whole frame) version(u8 = 1) flags(u8 = 0)
               reserved(u16 = 0) message
    message := type(u8) body
    v}

    [message] is self-describing, so nested messages (the [Proto.Relay] /
    [Proto.Seq] envelopes) embed with {!write_message}/{!read_message}
    and no inner framing.

    Encoding is exact-size: {!encode} computes {!frame_size} first and
    writes into a single allocation of exactly that many bytes. Decoding
    is strict: a frame whose length prefix disagrees with the buffer, a
    bad version, an unknown type tag, or trailing bytes all raise
    [Invalid_argument] — corrupt frames never decode to a value.

    Packets embed header-only (an IPv4 payload is its length field, as in
    {!Lazyctrl_net.Packet.to_bytes}) and the synthetic payload is then
    materialized as zero padding wherever a message carries the {e whole}
    packet, so [Bytes.length (encode m)] is the honest on-wire cost of
    [m]. A buffered [Packet_in] ([buffer_id <> Message.no_buffer]) omits
    the padding — only the headers cross the control channel, which is
    the point of switch-side buffering. *)

open Lazyctrl_net
open Lazyctrl_openflow

(** Positional big-endian writer over a caller-provided buffer. Writes
    past the end raise [Invalid_argument] (the byte primitives
    bound-check), so a mis-sized buffer cannot be silently overrun. *)
module W : sig
  type t = { buf : bytes; mutable pos : int }

  val create : int -> t
  (** A fresh zero-filled buffer of the given size, positioned at 0. *)

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  (** @raise Invalid_argument outside [\[0, 0xffff\]] — encoding never
      truncates a field silently. *)

  val u32 : t -> int -> unit
  (** @raise Invalid_argument outside [\[0, 0xffffffff\]]. *)

  val i64 : t -> int -> unit
  (** Any OCaml [int], sign-extended to 8 bytes; the lossless encoding
      for open-ended fields (cookies, sequence numbers, timeouts). *)

  val mac : t -> Mac.t -> unit  (** 6 bytes. *)

  val ip : t -> Ipv4.t -> unit  (** 4 bytes. *)

  val pad : t -> int -> unit
  (** Advance over [n] zero bytes (the buffer starts zero-filled). *)
end

(** Positional reader, the inverse of {!W}. Reads past the end raise
    [Invalid_argument]. *)
module R : sig
  type t = { buf : bytes; mutable pos : int }

  val of_bytes : bytes -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int
  val mac : t -> Mac.t
  val ip : t -> Ipv4.t

  val skip : t -> int -> unit
  (** Advance over [n] bytes without reading them (payload padding). *)
end

type 'ext ext = {
  ext_size : 'ext -> int;  (** exact bytes [ext_write] will emit *)
  ext_write : W.t -> 'ext -> unit;
  ext_read : R.t -> 'ext;
}
(** Codec for the ['ext] extension payload of
    {!Lazyctrl_openflow.Message.Extension}. [ext_size] must agree exactly
    with [ext_write] — {!encode} sizes its single allocation from it. *)

val unit_ext : unit ext
(** The baseline (extension-free) plane's codec: zero bytes. *)

val header_size : int
(** Fixed frame-header size: 8 bytes. *)

val packet_size : full:bool -> Packet.t -> int
(** Bytes {!write_packet} emits: form tag + outer header (encap only) +
    header-only eth encoding, plus the zero-padded payload when [full]. *)

val write_packet : W.t -> full:bool -> Packet.t -> unit

val read_packet : R.t -> Packet.t
(** Inverse of [write_packet ~full:false]: headers only, no padding
    consumed. *)

val read_full_packet : R.t -> Packet.t
(** Inverse of [write_packet ~full:true]: also consumes the zero-padded
    payload body. *)

val message_size : 'ext ext -> 'ext Message.t -> int
(** Exact size of the self-describing [message] production (type tag +
    body), i.e. what {!write_message} emits — the unit nested envelopes
    account in. *)

val write_message : 'ext ext -> W.t -> 'ext Message.t -> unit
val read_message : 'ext ext -> R.t -> 'ext Message.t

val frame_size : 'ext ext -> 'ext Message.t -> int
(** [header_size + message_size], the exact length of {!encode}'s
    result — the quantity the per-channel byte counters sum. *)

val encode : 'ext ext -> 'ext Message.t -> bytes
(** Single exact-size allocation; [Bytes.length (encode ext m)
    = frame_size ext m] always.
    @raise Invalid_argument when a bounded field is out of range (e.g. a
    flow-mod priority beyond 16 bits) — never silently truncates. *)

val decode : 'ext ext -> bytes -> 'ext Message.t
(** Inverse of {!encode}: [decode ext (encode ext m)] is structurally
    equal to [m] for every constructor (the round-trip property test in
    [test/test_wire.ml]).
    @raise Invalid_argument on truncation, a length prefix that
    disagrees with the buffer, a bad version, an unknown tag, or
    trailing bytes. *)
