(** Single-server FIFO processing queue (M/D/1-style).

    Models the controller's CPU: each submitted request occupies the
    server for a fixed service time; requests arriving while the server is
    busy wait in FIFO order. This is what makes the baseline controller's
    latency blow up under load — the effect behind the paper's 15 ms
    cold-cache measurement — without hard-coding any latency. *)

open Lazyctrl_sim

type t

val create : Engine.t -> service_time:Time.t -> t

val submit : t -> (unit -> unit) -> unit
(** Run the continuation when the request finishes service. *)

val queue_length : t -> int
(** Requests submitted but not yet finished. *)

val busy_until : t -> Time.t
val completed : t -> int
