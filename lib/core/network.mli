(** Whole-network simulation wiring.

    Builds the complete system of §IV for a given topology and mode —
    either the LazyCtrl hybrid plane (edge switches with L-FIB/G-FIB,
    designated switches, central controller) or the standard-OpenFlow
    comparison plane (dumb switches, reactive learning controller) — over
    one shared discrete-event engine, underlay, host model, and metrics
    recorder. This is the entry point examples, experiments, and the CLI
    drive. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_graph
open Lazyctrl_topo
open Lazyctrl_traffic
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_baseline
open Lazyctrl_metrics

type mode = Lazy | Openflow

type t

val create :
  ?params:Params.t ->
  ?controller_config:Controller.config ->
  ?of_config:Of_controller.config ->
  ?tracer:Lazyctrl_trace.Tracer.t ->
  mode:mode ->
  topo:Topology.t ->
  horizon:Time.t ->
  unit ->
  t
(** Builds switches, channels, controller and host model; attaches every
    host in the topology to its edge switch.  [tracer] (default
    disabled) is threaded through the lazy plane — edge switches,
    controller, reliable sessions — so a run can be flight-recorded;
    the baseline OpenFlow plane is not instrumented. *)

val engine : t -> Engine.t
val recorder : t -> Recorder.t

val tracer : t -> Lazyctrl_trace.Tracer.t
(** The tracer passed at creation (or the disabled singleton). *)

val topology : t -> Topology.t
val mode : t -> mode
val host_model : t -> Host_model.t
val underlay : t -> Underlay.t

val default_intensity : Topology.t -> Wgraph.t
(** A placement-derived prior (tenant co-location weights) for
    bootstrapping before any traffic statistics exist. *)

val bootstrap : t -> ?intensity:Wgraph.t -> unit -> unit
(** Lazy mode: run the controller's initial grouping (IniGroup) from the
    given history statistics (default {!default_intensity}) and push the
    group configurations. No-op in OpenFlow mode. *)

val start_flow :
  t -> src:Ids.Host_id.t -> dst:Ids.Host_id.t -> bytes:int -> packets:int -> unit
(** Application-level flow initiation at the source host. *)

val replay : t -> Trace.t -> unit
(** Schedule a whole trace of flow arrivals. *)

val run : t -> until:Time.t -> unit
val run_all : t -> unit

val lazy_controller : t -> Controller.t option
val of_controller : t -> Of_controller.t option
val edge_switch : t -> Ids.Switch_id.t -> Edge_switch.t option
val of_switch : t -> Ids.Switch_id.t -> Of_switch.t option

val switch_stats_sum : t -> Edge_switch.stats
(** Aggregate over all edge switches (zeros in OpenFlow mode). *)

val deploy_host : t -> Host.t -> at:Ids.Switch_id.t -> unit
(** Bring a brand-new VM online: add it to the topology and attach it at
    its edge switch (which learns and advertises it). *)

val migrate_host : t -> Ids.Host_id.t -> to_:Ids.Switch_id.t -> unit
(** VM migration: detach at the old switch, move in the topology, attach
    at the new one (driving the live state-dissemination path). *)

(** {1 Failure injection} (lazy mode) *)

val fail_switch : t -> Ids.Switch_id.t -> unit
(** Power the switch off. The controller's wheel detects it, reselects a
    designated switch if needed, and issues a reboot; the switch comes
    back after [params.reboot_delay] and is re-synced. *)

val repair_switch : t -> Ids.Switch_id.t -> unit
(** Power the switch back on (idempotent). The switch sends a power-on
    [Hello] so the controller re-pushes its group configuration even when
    the outage was shorter than failure detection. *)

val fail_control_link : t -> Ids.Switch_id.t -> unit
val repair_control_link : t -> Ids.Switch_id.t -> unit
val fail_peer_link : t -> Ids.Switch_id.t -> Ids.Switch_id.t -> unit
val repair_peer_link : t -> Ids.Switch_id.t -> Ids.Switch_id.t -> unit

val fail_peer_link_directed :
  t -> src:Ids.Switch_id.t -> dst:Ids.Switch_id.t -> unit
(** Break one direction only — the Table I "peer link (up)" vs "(down)"
    distinction. *)

val fail_data_path :
  t -> src:Ids.Switch_id.t -> dst:Ids.Switch_id.t -> notify:bool -> unit
(** Break the one-way underlay path; with [notify], the controller is told
    and installs detour rules (§III-E2). *)

val repair_data_path : t -> src:Ids.Switch_id.t -> dst:Ids.Switch_id.t -> unit

(** {1 Channel loss injection} (lazy mode)

    Seeded Gilbert–Elliott loss on the control and peer channels. The
    per-channel loss streams are sub-streams of the network seed, so runs
    are reproducible regardless of when loss is (re)configured. *)

val set_control_loss : t -> Lazyctrl_openflow.Channel.loss_spec option -> unit
(** Apply (or with [None], clear) a loss model on every switch ↔
    controller channel, both directions. *)

val set_peer_loss : t -> Lazyctrl_openflow.Channel.loss_spec option -> unit
(** Same for every switch ↔ switch peer channel, including channels
    created lazily after this call. *)

(** {1 Aggregate channel and reliability accounting} *)

type link_totals = {
  links_sent : int;
  links_delivered : int;
  links_dropped : int;      (** dropped because the channel was down *)
  links_lost : int;         (** dropped by the random loss model *)
  links_duplicated : int;
  links_bytes_sent : int;
      (** encoded frame bytes offered, all channels (DESIGN.md §13) *)
  links_bytes_delivered : int;  (** frame bytes actually delivered *)
}

val link_stats : t -> link_totals
(** Totals over all control and peer channels. *)

val ctrl_bytes_sent : t -> int
(** Encoded bytes offered on the controller-facing channels only (both
    directions, either plane) — the control-channel load behind the
    bytes/sec series.  Equals the recorder's [total_ctrl_bytes] and the
    tracer's [ctrl_bytes] exactly, by construction. *)

val reliability_stats : t -> Lazyctrl_openflow.Reliable.stats
(** Aggregate over every reliable session in the network — controller-side
    and switch-side. [violations = 0] is the exactly-once invariant. *)
