(** End-host (VM) behaviour.

    Hosts resolve destinations with ARP before sending (live state
    dissemination, §III-D3 case i), keep an ARP cache with a TTL, queue
    flows behind an outstanding resolution, and answer ARP requests for
    their own address after a small stack delay. Each flow sends one
    simulated first packet carrying a unique flow id in its port fields;
    the remaining packets of the flow are accounted analytically by the
    caller when classification reports the delivery. *)

open Lazyctrl_net
open Lazyctrl_sim

type t

type flow_meta = {
  id : int;
  src : Ids.Host_id.t;
  dst : Ids.Host_id.t;
  bytes : int;
  packets : int;
  started : Time.t; (** when the application initiated the flow *)
}

type delivery =
  | Data_first of flow_meta  (** first delivery of a flow's first packet *)
  | Data_remote of int
      (** first delivery of a flow whose metadata lives in another
          shard's model (its id is outside this model's id space); the
          caller posts a {!complete_remote} receipt to the owner *)
  | Data_duplicate           (** Bloom-multicast duplicate or flooded copy *)
  | Arp_handled              (** request answered or reply consumed *)
  | Not_for_host             (** flooded frame for someone else; ignored *)

val create :
  ?flow_id_base:int ->
  ?flow_id_stride:int ->
  Engine.t ->
  send:(Host.t -> Packet.t -> unit) ->
  arp_ttl:Time.t ->
  stack_delay:Time.t ->
  t
(** [send] injects a frame at the host's edge switch (the caller adds the
    host-port latency).  [flow_id_base]/[flow_id_stride] (default 0/1)
    carve disjoint flow-id spaces for per-shard models under
    {!Shard_net}: model [b] of stride [s] allocates ids [b, b+s, …], so
    [id mod s] names the owning model.
    @raise Invalid_argument unless [0 <= flow_id_base < flow_id_stride]. *)

val start_flow : t -> src:Host.t -> dst:Host.t -> bytes:int -> packets:int -> unit
(** Initiate a flow; sends the data packet directly on a warm ARP cache,
    otherwise queues it behind an ARP exchange. Unanswered requests are
    retransmitted with linear backoff (up to 4 retries) before the queued
    flows are abandoned. *)

val deliver : t -> to_:Host.t -> Packet.t -> delivery
(** Process a frame arriving at a host. ARP requests for the host trigger
    a reply after the stack delay; ARP replies resolve the cache and
    release queued flows. *)

val complete_remote : t -> int -> flow_meta option
(** Owner-side receipt for a flow first-delivered in another shard:
    retires the in-flight entry and counts the delivery.  [None] when the
    id is unknown or already completed (e.g. a duplicate receipt). *)

val flows_started : t -> int
val flows_delivered : t -> int
val arp_requests_sent : t -> int
val resolutions_failed : t -> int
(** Resolutions abandoned after the retry budget. Set the
    [LAZYCTRL_DEBUG_ARP] environment variable to log each failure. *)

val pending_resolutions : t -> int
