open Lazyctrl_net
open Lazyctrl_sim

type flow_meta = {
  id : int;
  src : Ids.Host_id.t;
  dst : Ids.Host_id.t;
  bytes : int;
  packets : int;
  started : Time.t;
}

type delivery =
  | Data_first of flow_meta
  | Data_remote of int
  | Data_duplicate
  | Arp_handled
  | Not_for_host

type t = {
  engine : Engine.t;
  send : Host.t -> Packet.t -> unit;
  arp_ttl : Time.t;
  stack_delay : Time.t;
  arp_cache : (int * int, Time.t) Hashtbl.t; (* (host, peer ip) -> expiry *)
  pending : (int * int, (Host.t * Host.t * int * int * Time.t) list) Hashtbl.t;
      (* (host, peer ip) -> queued flows (src, dst, bytes, packets,
         initiated-at), newest first *)
  in_flight : (int, flow_meta) Hashtbl.t; (* flow id -> meta *)
  seen_remote : (int, unit) Hashtbl.t; (* remotely-owned ids already seen *)
  flow_id_base : int;
  flow_id_stride : int;
  mutable next_flow_id : int;
  mutable started : int;
  mutable delivered : int;
  mutable arp_sent : int;
  mutable arp_failed : int;
}

let create ?(flow_id_base = 0) ?(flow_id_stride = 1) engine ~send ~arp_ttl
    ~stack_delay =
  if flow_id_stride < 1 || flow_id_base < 0 || flow_id_base >= flow_id_stride
  then invalid_arg "Host_model.create: need 0 <= flow_id_base < flow_id_stride";
  {
    engine;
    send;
    arp_ttl;
    stack_delay;
    arp_cache = Hashtbl.create 4096;
    pending = Hashtbl.create 256;
    in_flight = Hashtbl.create 1024;
    seen_remote = Hashtbl.create 64;
    flow_id_base;
    flow_id_stride;
    next_flow_id = flow_id_base;
    started = 0;
    delivered = 0;
    arp_sent = 0;
    arp_failed = 0;
  }

let now t = Engine.now t.engine

let cache_key (host : Host.t) ip = (Ids.Host_id.to_int host.id, Ipv4.to_int ip)

let cache_fresh t host ip =
  match Hashtbl.find_opt t.arp_cache (cache_key host ip) with
  | Some expiry -> Time.(now t < expiry)
  | None -> false

let vlan_of (h : Host.t) = Lazyctrl_topo.Topology.vlan_of_tenant h.tenant

let send_data t (src : Host.t) (dst : Host.t) ~bytes ~packets ~initiated =
  let id = t.next_flow_id in
  t.next_flow_id <- t.next_flow_id + t.flow_id_stride;
  t.started <- t.started + 1;
  (* Latency is measured from flow initiation, so a first packet held back
     by ARP resolution carries the resolution cost, as in the paper's
     cold-cache runs. *)
  let meta = { id; src = src.id; dst = dst.id; bytes; packets; started = initiated } in
  Hashtbl.replace t.in_flight id meta;
  let packet =
    Packet.data ~src ~dst ~vlan:(vlan_of src)
      ~src_port:(id land 0xffff)
      ~dst_port:((id lsr 16) land 0xffff)
      ~length:(max 64 (bytes / max 1 packets))
      ()
  in
  t.send src packet

(* Real stacks retransmit ARP; without it, one request lost in a
   regrouping window would strand every flow queued behind it. *)
let max_arp_retries = 4

let rec send_arp t (src : Host.t) target_ip ~attempt =
  t.arp_sent <- t.arp_sent + 1;
  t.send src
    (Packet.arp_request ~sender:src ~target_ip ~vlan:(vlan_of src) ());
  let key = cache_key src target_ip in
  ignore
    (Engine.schedule t.engine
       ~after:(Time.scale (Time.of_sec 1) (Float.of_int (attempt + 1)))
       (fun () ->
         if Hashtbl.mem t.pending key then
           if attempt < max_arp_retries then
             send_arp t src target_ip ~attempt:(attempt + 1)
           else begin
             (* Resolution failed: give up on the queued flows so a later
                flow can start a fresh resolution. *)
             t.arp_failed <- t.arp_failed + 1;
             if Option.is_some (Sys.getenv_opt "LAZYCTRL_DEBUG_ARP") then
               Printf.eprintf "ARP-FAIL t=%.1fs src=h%d dst_ip=%s\n%!"
                 (Time.to_float_sec (now t))
                 (Ids.Host_id.to_int src.Host.id)
                 (Ipv4.to_string target_ip);
             Hashtbl.remove t.pending key
           end))

let start_flow t ~src ~dst ~bytes ~packets =
  let (dst : Host.t) = dst in
  if cache_fresh t src dst.ip then
    send_data t src dst ~bytes ~packets ~initiated:(now t)
  else begin
    let key = cache_key src dst.ip in
    let queued = Option.value (Hashtbl.find_opt t.pending key) ~default:[] in
    Hashtbl.replace t.pending key ((src, dst, bytes, packets, now t) :: queued);
    (* One outstanding resolution per (host, target); later flows just
       queue behind it. *)
    if List.is_empty queued then send_arp t src dst.ip ~attempt:0
  end

let flow_id_of (p : Packet.ipv4_payload) =
  p.src_port lor (p.dst_port lsl 16)

let deliver t ~to_ packet =
  let (host : Host.t) = to_ in
  let eth = Packet.eth_of packet in
  match eth.Packet.payload with
  | Packet.Arp { op = Packet.Request; sender_mac; sender_ip; target_ip; _ } ->
      if Ipv4.equal target_ip host.ip then begin
        (* Answer after the stack delay; also learn the requester (gratuitous
           cache fill, as real stacks do). *)
        Hashtbl.replace t.arp_cache (cache_key host sender_ip)
          (Time.add (now t) t.arp_ttl);
        let requester =
          (* Reconstruct the peer's identity from the ARP payload. *)
          {
            Host.id = Ids.Host_id.of_int (Mac.to_int sender_mac land ((1 lsl 40) - 1));
            mac = sender_mac;
            ip = sender_ip;
            tenant = host.tenant;
          }
        in
        ignore
          (Engine.schedule t.engine ~after:t.stack_delay (fun () ->
               t.send host
                 (Packet.arp_reply ~sender:host ~requester ~vlan:(vlan_of host) ())));
        Arp_handled
      end
      else Not_for_host
  | Packet.Arp { op = Packet.Reply; sender_ip; _ } ->
      Hashtbl.replace t.arp_cache (cache_key host sender_ip)
        (Time.add (now t) t.arp_ttl);
      let key = cache_key host sender_ip in
      (match Hashtbl.find_opt t.pending key with
      | None -> ()
      | Some queued ->
          Hashtbl.remove t.pending key;
          List.iter
            (fun (src, dst, bytes, packets, initiated) ->
              send_data t src dst ~bytes ~packets ~initiated)
            (List.rev queued));
      Arp_handled
  | Packet.Ipv4 p ->
      if not (Mac.equal eth.Packet.dst host.mac) then Not_for_host
      else begin
        let id = flow_id_of p in
        if id mod t.flow_id_stride <> t.flow_id_base then
          (* The flow's metadata lives in another shard's model (disjoint
             id spaces under a sharded run).  Dedup locally; the caller
             posts a completion receipt back to the owning shard. *)
          if Hashtbl.mem t.seen_remote id then Data_duplicate
          else begin
            Hashtbl.replace t.seen_remote id ();
            Data_remote id
          end
        else
          match Hashtbl.find_opt t.in_flight id with
          | Some meta when Ids.Host_id.equal meta.dst host.id ->
              Hashtbl.remove t.in_flight id;
              t.delivered <- t.delivered + 1;
              Data_first meta
          | Some _ -> Data_duplicate
          | None -> Data_duplicate
      end

let complete_remote t id =
  match Hashtbl.find_opt t.in_flight id with
  | Some meta ->
      Hashtbl.remove t.in_flight id;
      t.delivered <- t.delivered + 1;
      Some meta
  | None -> None

let resolutions_failed t = t.arp_failed
let flows_started t = t.started
let flows_delivered t = t.delivered
let arp_requests_sent t = t.arp_sent
let pending_resolutions t = Hashtbl.length t.pending
