open Lazyctrl_sim

type t = {
  engine : Engine.t;
  service_time : Time.t;
  mutable busy_until : Time.t;
  mutable in_flight : int;
  mutable completed : int;
}

let create engine ~service_time =
  { engine; service_time; busy_until = Time.zero; in_flight = 0; completed = 0 }

let submit t f =
  let start = Time.max (Engine.now t.engine) t.busy_until in
  let finish = Time.add start t.service_time in
  t.busy_until <- finish;
  t.in_flight <- t.in_flight + 1;
  ignore
    (Engine.schedule_at t.engine ~at:finish (fun () ->
         t.in_flight <- t.in_flight - 1;
         t.completed <- t.completed + 1;
         f ()))

let queue_length t = t.in_flight
let busy_until t = t.busy_until
let completed t = t.completed
