(** Calibrated simulation parameters.

    The latency constants are calibrated so that the paper's §V-E
    end-to-end numbers fall out of the mechanism rather than being wired
    in: LazyCtrl intra-group cold-cache ≈ 0.8 ms (one ARP exchange + one
    data hop, all in the data plane), inter-group ≈ 5 ms (one controller
    round-trip in each of the three exchange legs), standard OpenFlow ≈
    15 ms (every leg pays control-link + Floodlight service time, plus
    queueing under load). See EXPERIMENTS.md for the calibration table. *)

open Lazyctrl_sim

type t = {
  seed : int;
  host_port_latency : Time.t;  (** host NIC ↔ edge switch, one way *)
  host_stack_delay : Time.t;   (** host processing before an ARP reply *)
  underlay_latency : Time.t;   (** edge ↔ edge through the core, one way *)
  control_link_latency : Time.t; (** switch ↔ controller, one way *)
  peer_link_latency : Time.t;    (** switch ↔ switch control channel *)
  controller_service : Time.t;
      (** LazyCtrl controller per-request processing time *)
  of_controller_service : Time.t;
      (** Floodlight-style baseline per-request processing time (Java
          reactive pipeline; order-of-magnitude slower than the lazy
          controller's rare-path handling) *)
  arp_cache_ttl : Time.t;
  reboot_delay : Time.t;       (** switch power-cycle time (§III-E3) *)
  flow_table_capacity : int;
  switch_config : Lazyctrl_switch.Edge_switch.config;
  control_loss : Lazyctrl_openflow.Channel.loss_spec option;
      (** Gilbert–Elliott loss on every control link; [None] = lossless.
          Retry/backoff knobs live in [switch_config.retrans] and the
          controller config's [retrans]. *)
  peer_loss : Lazyctrl_openflow.Channel.loss_spec option;
      (** same, for the switch ↔ switch peer links *)
}

val default : t

val with_seed : int -> t -> t
