open Lazyctrl_sim

type t = {
  seed : int;
  host_port_latency : Time.t;
  host_stack_delay : Time.t;
  underlay_latency : Time.t;
  control_link_latency : Time.t;
  peer_link_latency : Time.t;
  controller_service : Time.t;
  of_controller_service : Time.t;
  arp_cache_ttl : Time.t;
  reboot_delay : Time.t;
  flow_table_capacity : int;
  switch_config : Lazyctrl_switch.Edge_switch.config;
  control_loss : Lazyctrl_openflow.Channel.loss_spec option;
  peer_loss : Lazyctrl_openflow.Channel.loss_spec option;
}

let default =
  {
    seed = 42;
    host_port_latency = Time.of_us 20;
    host_stack_delay = Time.of_us 30;
    underlay_latency = Time.of_us 250;
    control_link_latency = Time.of_ms 1;
    peer_link_latency = Time.of_us 150;
    controller_service = Time.of_us 100;
    of_controller_service = Time.of_us 1500;
    arp_cache_ttl = Time.of_min 10;
    reboot_delay = Time.of_sec 10;
    flow_table_capacity = 4096;
    switch_config = Lazyctrl_switch.Edge_switch.default_config;
    control_loss = None;
    peer_loss = None;
  }

let with_seed seed t = { t with seed }
