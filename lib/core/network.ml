open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_graph
open Lazyctrl_topo
open Lazyctrl_traffic
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_baseline
open Lazyctrl_metrics
module Prng = Lazyctrl_util.Prng
module Det = Lazyctrl_util.Det
module Sid = Ids.Switch_id
module Tracer = Lazyctrl_trace.Tracer
module Wire = Lazyctrl_wire.Wire

(* Every control-plane channel carries real bytes: messages are encoded
   through the DESIGN.md §13 wire format at send and decoded back at
   delivery, so the channels' byte counters (and the bytes/sec series
   fed from them) measure the actual frames, not estimates.  The one
   value-passing exception is the control-link relay detour in
   [send_switch], which models a neighbour hand-off without a channel. *)
let set_proto_codec ch =
  Channel.set_codec ch ~encode:(Wire.encode Proto.wire_ext)
    ~decode:(Wire.decode Proto.wire_ext)

let set_unit_codec ch =
  Channel.set_codec ch ~encode:(Wire.encode Wire.unit_ext)
    ~decode:(Wire.decode Wire.unit_ext)

type mode = Lazy | Openflow

type lazy_plane = {
  controller : Controller.t;
  switches : Edge_switch.t array;
  ctrl_up : Edge_switch.msg Channel.t array;   (* switch -> controller *)
  ctrl_down : Edge_switch.msg Channel.t array; (* controller -> switch *)
  peer : (int * int, Edge_switch.msg Channel.t) Hashtbl.t;
  relay : (int, Sid.t) Hashtbl.t; (* switch under control-link failover -> via *)
  loss_rng : Prng.t; (* parent stream for per-channel loss sub-streams *)
  peer_loss : Channel.loss_spec option ref;
      (* current spec, inherited by lazily created peer channels *)
}

type of_plane = {
  of_controller : Of_controller.t;
  of_switches : Of_switch.t array;
  of_ctrl_up : Of_switch.msg Channel.t array;
  of_ctrl_down : Of_switch.msg Channel.t array;
}

type plane = Lazy_plane of lazy_plane | Of_plane of of_plane

type t = {
  params : Params.t;
  engine : Engine.t;
  tracer : Tracer.t;
  topo : Topology.t;
  underlay : Underlay.t;
  recorder : Recorder.t;
  hosts : Host_model.t;
  plane : plane;
}

let engine t = t.engine
let recorder t = t.recorder
let tracer t = t.tracer
let topology t = t.topo
let host_model t = t.hosts
let underlay t = t.underlay

let mode t = match t.plane with Lazy_plane _ -> Lazy | Of_plane _ -> Openflow

(* Fast-path latency of a packet that hits warm tables: two host ports
   plus (for a remote destination) one underlay traversal. *)
let fast_path_latency t ~src ~dst =
  let two_ports = Time.scale t.params.Params.host_port_latency 2.0 in
  if Sid.equal (Topology.location t.topo src) (Topology.location t.topo dst) then
    two_ports
  else Time.add two_ports t.params.Params.underlay_latency

(* Frame delivered on a host port: dispatch to the host model and record
   latency measurements. *)
let host_delivery t host pkt =
  match Host_model.deliver t.hosts ~to_:host pkt with
  | Host_model.Data_first meta ->
      let lat = Time.diff (Engine.now t.engine) meta.Host_model.started in
      Recorder.record_first_packet_latency t.recorder lat;
      if meta.Host_model.packets > 1 then
        Recorder.record_fast_path_latency t.recorder
          ~n:(meta.Host_model.packets - 1)
          (fast_path_latency t ~src:meta.Host_model.src ~dst:meta.Host_model.dst)
  | Host_model.Data_remote _ (* impossible at stride 1 *)
  | Host_model.Data_duplicate | Host_model.Arp_handled | Host_model.Not_for_host
    ->
      ()

(* Attach (or clear) a loss model; the sub-stream is keyed by the channel
   name, so the draw sequence of one channel never depends on another. *)
let apply_loss loss_rng spec ch =
  match spec with
  | None -> Channel.clear_loss ch
  | Some spec ->
      Channel.set_loss ch ~rng:(Prng.named loss_rng ("loss:" ^ Channel.name ch)) spec

let make_lazy_plane ~params ~controller_config ~tracer ~engine ~topo ~underlay
    ~deliver_local =
  let n = Topology.n_switches topo in
  let rng = Prng.create params.Params.seed in
  let loss_rng = Prng.named rng "channel-loss" in
  let peer_loss = ref params.Params.peer_loss in
  let switches : Edge_switch.t option array = Array.make n None in
  let get_switch i = Option.get switches.(i) in
  let ctrl_up =
    Array.init n (fun i ->
        let ch =
          Channel.create ~strict:true engine
            ~latency:params.Params.control_link_latency
            ~name:(Printf.sprintf "ctrl-up-%d" i) ()
        in
        set_proto_codec ch;
        apply_loss loss_rng params.Params.control_loss ch;
        ch)
  in
  let ctrl_down =
    Array.init n (fun i ->
        let ch =
          Channel.create ~strict:true engine
            ~latency:params.Params.control_link_latency
            ~name:(Printf.sprintf "ctrl-down-%d" i) ()
        in
        set_proto_codec ch;
        apply_loss loss_rng params.Params.control_loss ch;
        ch)
  in
  let peer : (int * int, Edge_switch.msg Channel.t) Hashtbl.t =
    Hashtbl.create 1024
  in
  let peer_channel src dst =
    let key = (Sid.to_int src, Sid.to_int dst) in
    match Hashtbl.find_opt peer key with
    | Some ch -> ch
    | None ->
        let ch =
          Channel.create ~strict:true engine
            ~latency:params.Params.peer_link_latency
            ~name:(Printf.sprintf "peer-%d-%d" (fst key) (snd key))
            ()
        in
        set_proto_codec ch;
        apply_loss loss_rng !peer_loss ch;
        Channel.set_receiver ch (fun msg ->
            Edge_switch.handle_peer_message (get_switch (snd key)) ~from:src msg);
        Hashtbl.replace peer key ch;
        ch
  in
  let relay = Hashtbl.create 8 in
  let service =
    Service_queue.create engine ~service_time:params.Params.controller_service
  in
  let controller_ref = ref None in
  let controller_env =
    {
      Controller.engine;
      send_switch =
        (fun sw msg ->
          let i = Sid.to_int sw in
          match Hashtbl.find_opt relay i with
          | Some via when not (Channel.is_up ctrl_down.(i)) ->
              (* Controller → neighbour over its control link, neighbour →
                 switch over the peer link; modelled as the combined
                 latency with direct hand-off. *)
              let delay =
                Time.add params.Params.control_link_latency
                  params.Params.peer_link_latency
              in
              ignore via;
              ignore
                (Engine.schedule engine ~after:delay (fun () ->
                     Edge_switch.handle_controller_message (get_switch i) msg))
          | _ -> ignore (Channel.send ctrl_down.(i) msg));
      reboot_switch =
        (fun sw ->
          ignore
            (Engine.schedule engine ~after:params.Params.reboot_delay (fun () ->
                 Edge_switch.set_up (get_switch (Sid.to_int sw)) true)));
      request_relay =
        (fun sw ~via ->
          let i = Sid.to_int sw in
          (match via with
          | Some v -> Hashtbl.replace relay i v
          | None -> Hashtbl.remove relay i);
          Edge_switch.set_control_relay (get_switch i) via);
      rng = Prng.named rng "controller";
    }
  in
  let controller =
    Controller.create ~tracer controller_env controller_config ~n_switches:n
  in
  controller_ref := Some controller;
  Array.iteri
    (fun i ch ->
      Channel.set_receiver ch (fun msg ->
          Service_queue.submit service (fun () ->
              Controller.handle_message controller ~from:(Sid.of_int i) msg)))
    ctrl_up;
  for i = 0 to n - 1 do
    let self = Sid.of_int i in
    let env =
      {
        Edge_switch.engine;
        send_controller = (fun msg -> Channel.send ctrl_up.(i) msg);
        send_peer =
          (fun p msg ->
            if not (Sid.equal p self) then
              ignore (Channel.send (peer_channel self p) msg));
        send_underlay = (fun pkt -> ignore (Underlay.send underlay pkt));
        deliver_local;
        underlay_ip_of = (fun sw -> Topology.underlay_ip topo sw);
      }
    in
    let sw =
      Edge_switch.create ~tracer
        ~rng:(Prng.named rng "switch-sessions")
        env params.Params.switch_config ~self
    in
    switches.(i) <- Some sw;
    Underlay.register underlay (Topology.underlay_ip topo self) (fun pkt ->
        Edge_switch.handle_underlay sw pkt);
    Array.iteri
      (fun j ch ->
        if j = i then
          Channel.set_receiver ch (fun msg ->
              Edge_switch.handle_controller_message sw msg))
      ctrl_down
  done;
  {
    controller;
    switches = Array.map Option.get switches;
    ctrl_up;
    ctrl_down;
    peer;
    relay;
    loss_rng;
    peer_loss;
  }

let make_of_plane ~params ~of_config ~engine ~topo ~underlay ~deliver_local =
  let n = Topology.n_switches topo in
  let switches : Of_switch.t option array = Array.make n None in
  let ctrl_up =
    Array.init n (fun i ->
        let ch =
          Channel.create ~strict:true engine
            ~latency:params.Params.control_link_latency
            ~name:(Printf.sprintf "of-ctrl-up-%d" i) ()
        in
        set_unit_codec ch;
        ch)
  in
  let ctrl_down =
    Array.init n (fun i ->
        let ch =
          Channel.create ~strict:true engine
            ~latency:params.Params.control_link_latency
            ~name:(Printf.sprintf "of-ctrl-down-%d" i) ()
        in
        set_unit_codec ch;
        ch)
  in
  let service =
    Service_queue.create engine ~service_time:params.Params.of_controller_service
  in
  let controller =
    Of_controller.create
      { Of_controller.engine; send_switch =
          (fun sw msg -> ignore (Channel.send ctrl_down.(Sid.to_int sw) msg));
        n_switches = n }
      of_config
  in
  Array.iteri
    (fun i ch ->
      Channel.set_receiver ch (fun msg ->
          Service_queue.submit service (fun () ->
              Of_controller.handle_message controller ~from:(Sid.of_int i) msg)))
    ctrl_up;
  for i = 0 to n - 1 do
    let self = Sid.of_int i in
    let env =
      {
        Of_switch.engine;
        send_controller = (fun msg -> ignore (Channel.send ctrl_up.(i) msg));
        send_underlay = (fun pkt -> ignore (Underlay.send underlay pkt));
        deliver_local;
        underlay_ip = Topology.underlay_ip topo self;
      }
    in
    let sw = Of_switch.create env ~flow_table_capacity:params.Params.flow_table_capacity in
    switches.(i) <- Some sw;
    Underlay.register underlay (Topology.underlay_ip topo self) (fun pkt ->
        Of_switch.handle_underlay sw pkt);
    Channel.set_receiver ctrl_down.(i) (fun msg ->
        Of_switch.handle_controller_message sw msg)
  done;
  {
    of_controller = controller;
    of_switches = Array.map Option.get switches;
    of_ctrl_up = ctrl_up;
    of_ctrl_down = ctrl_down;
  }

let create ?(params = Params.default)
    ?(controller_config = Controller.default_config)
    ?(of_config = Of_controller.default_config)
    ?(tracer = Tracer.disabled) ~mode ~topo ~horizon () =
  let engine = Engine.create () in
  let underlay =
    Underlay.create engine ~latency:params.Params.underlay_latency ()
  in
  let recorder = Recorder.create engine ~horizon () in
  (* The host model's send callback needs the plane; tie the knot with a
     forward reference. *)
  let send_ref = ref (fun (_ : Host.t) (_ : Packet.t) -> ()) in
  let hosts =
    Host_model.create engine
      ~send:(fun h p -> !send_ref h p)
      ~arp_ttl:params.Params.arp_cache_ttl
      ~stack_delay:params.Params.host_stack_delay
  in
  let t_ref = ref None in
  let deliver_local host pkt =
    match !t_ref with
    | Some t ->
        ignore
          (Engine.schedule engine ~after:params.Params.host_port_latency
             (fun () -> host_delivery t host pkt))
    | None -> ()
  in
  let plane =
    match mode with
    | Lazy ->
        Lazy_plane
          (make_lazy_plane ~params ~controller_config ~tracer ~engine ~topo
             ~underlay ~deliver_local)
    | Openflow ->
        Of_plane
          (make_of_plane ~params ~of_config ~engine ~topo ~underlay
             ~deliver_local)
  in
  let t = { params; engine; tracer; topo; underlay; recorder; hosts; plane } in
  t_ref := Some t;
  (* Host frames enter the network at the host's current edge switch after
     the port latency. *)
  (send_ref :=
     fun host pkt ->
       let loc = Topology.location topo host.Host.id in
       ignore
         (Engine.schedule engine ~after:params.Params.host_port_latency
            (fun () ->
              match t.plane with
              | Lazy_plane p ->
                  Edge_switch.handle_from_host p.switches.(Sid.to_int loc) host pkt
              | Of_plane p ->
                  Of_switch.handle_from_host p.of_switches.(Sid.to_int loc) host pkt)));
  (* Attach every host to its switch. *)
  List.iter
    (fun (h : Host.t) ->
      let loc = Sid.to_int (Topology.location topo h.id) in
      match t.plane with
      | Lazy_plane p -> Edge_switch.attach_host p.switches.(loc) h
      | Of_plane p -> Of_switch.attach_host p.of_switches.(loc) h)
    (Topology.hosts topo);
  (* Wire measurement taps. *)
  (* The ctrl-bytes series counts controller-facing channels only (both
     directions); peer links keep their own per-channel byte counters but
     are switch-to-switch load, not controller load. The hook fires once
     per encoded send, at the instant the channel's own [bytes_sent]
     grows, so recorder and tracer totals equal the channel counters
     exactly — the DESIGN.md §13 cross-check. *)
  let tap_ctrl_bytes ch =
    Channel.set_wire_hook ch (fun n ->
        Recorder.on_control_bytes recorder n;
        Tracer.add_ctrl_bytes tracer n)
  in
  (match t.plane with
  | Lazy_plane p ->
      Array.iter tap_ctrl_bytes p.ctrl_up;
      Array.iter tap_ctrl_bytes p.ctrl_down;
      Controller.set_request_hook p.controller (fun () ->
          Recorder.on_controller_request recorder);
      Controller.set_update_hook p.controller (fun () ->
          Recorder.on_grouping_update recorder)
  | Of_plane p ->
      Array.iter tap_ctrl_bytes p.of_ctrl_up;
      Array.iter tap_ctrl_bytes p.of_ctrl_down;
      Of_controller.set_request_hook p.of_controller (fun () ->
          Recorder.on_controller_request recorder));
  t

(* A placement-derived prior intensity: switches sharing tenants will
   probably exchange traffic proportionally to the co-located VM counts. *)
let default_intensity topo =
  let n = Topology.n_switches topo in
  let b = Wgraph.Builder.create ~n in
  List.iter
    (fun tenant ->
      let sws = Topology.tenant_switches topo tenant in
      let counts =
        List.map
          (fun sw ->
            ( Sid.to_int sw,
              List.length
                (List.filter
                   (fun (h : Host.t) -> Ids.Tenant_id.equal h.tenant tenant)
                   (Topology.hosts_at topo sw)) ))
          sws
      in
      List.iter
        (fun (a, ca) ->
          List.iter
            (fun (b', cb) ->
              if a < b' then
                Wgraph.Builder.add_edge b a b' (Float.of_int (ca * cb)))
            counts)
        counts)
    (Topology.tenants topo);
  Wgraph.Builder.build b

let bootstrap t ?intensity () =
  match t.plane with
  | Of_plane _ -> ()
  | Lazy_plane p ->
      let intensity =
        match intensity with Some g -> g | None -> default_intensity t.topo
      in
      Controller.bootstrap p.controller ~intensity

let start_flow t ~src ~dst ~bytes ~packets =
  let src = Topology.host t.topo src and dst = Topology.host t.topo dst in
  Host_model.start_flow t.hosts ~src ~dst ~bytes ~packets

let replay t trace =
  ignore
    (Replay.start t.engine trace ~on_flow:(fun f ->
         start_flow t ~src:f.Trace.src ~dst:f.Trace.dst ~bytes:f.Trace.bytes
           ~packets:f.Trace.packets))

let run t ~until = Engine.run ~until t.engine
let run_all t = Engine.run t.engine

let lazy_controller t =
  match t.plane with Lazy_plane p -> Some p.controller | Of_plane _ -> None

let of_controller t =
  match t.plane with Of_plane p -> Some p.of_controller | Lazy_plane _ -> None

let edge_switch t sw =
  match t.plane with
  | Lazy_plane p -> Some p.switches.(Sid.to_int sw)
  | Of_plane _ -> None

let of_switch t sw =
  match t.plane with
  | Of_plane p -> Some p.of_switches.(Sid.to_int sw)
  | Lazy_plane _ -> None

let zero_stats : Edge_switch.stats =
  {
    packets_from_hosts = 0;
    packets_delivered = 0;
    encap_sent = 0;
    flow_table_handled = 0;
    lfib_handled = 0;
    gfib_handled = 0;
    gfib_duplicates = 0;
    punted = 0;
    fp_drops = 0;
    arp_local_answered = 0;
    arp_group_escalated = 0;
    adverts_sent = 0;
    keepalives_sent = 0;
    misses_buffered = 0;
    misses_replayed = 0;
  }

let switch_stats_sum t =
  match t.plane with
  | Of_plane _ -> zero_stats
  | Lazy_plane p ->
      Array.fold_left
        (fun (acc : Edge_switch.stats) sw ->
          let s = Edge_switch.stats sw in
          {
            Edge_switch.packets_from_hosts =
              acc.packets_from_hosts + s.packets_from_hosts;
            packets_delivered = acc.packets_delivered + s.packets_delivered;
            encap_sent = acc.encap_sent + s.encap_sent;
            flow_table_handled = acc.flow_table_handled + s.flow_table_handled;
            lfib_handled = acc.lfib_handled + s.lfib_handled;
            gfib_handled = acc.gfib_handled + s.gfib_handled;
            gfib_duplicates = acc.gfib_duplicates + s.gfib_duplicates;
            punted = acc.punted + s.punted;
            fp_drops = acc.fp_drops + s.fp_drops;
            arp_local_answered = acc.arp_local_answered + s.arp_local_answered;
            arp_group_escalated = acc.arp_group_escalated + s.arp_group_escalated;
            adverts_sent = acc.adverts_sent + s.adverts_sent;
            keepalives_sent = acc.keepalives_sent + s.keepalives_sent;
            misses_buffered = acc.misses_buffered + s.misses_buffered;
            misses_replayed = acc.misses_replayed + s.misses_replayed;
          })
        zero_stats p.switches

let deploy_host t host ~at =
  Topology.add_host t.topo host ~at;
  match t.plane with
  | Lazy_plane p -> Edge_switch.attach_host p.switches.(Sid.to_int at) host
  | Of_plane p -> Of_switch.attach_host p.of_switches.(Sid.to_int at) host

let migrate_host t hid ~to_ =
  let host = Topology.host t.topo hid in
  let from = Topology.migrate t.topo hid ~to_ in
  match t.plane with
  | Lazy_plane p ->
      Edge_switch.detach_host p.switches.(Sid.to_int from) hid;
      Edge_switch.attach_host p.switches.(Sid.to_int to_) host
  | Of_plane p ->
      Of_switch.detach_host p.of_switches.(Sid.to_int from) host;
      Of_switch.attach_host p.of_switches.(Sid.to_int to_) host

(* --- failure injection -------------------------------------------------- *)

let with_lazy t f = match t.plane with Lazy_plane p -> f p | Of_plane _ -> ()

let fail_switch t sw =
  with_lazy t (fun p -> Edge_switch.set_up p.switches.(Sid.to_int sw) false)

let repair_switch t sw =
  with_lazy t (fun p ->
      let es = p.switches.(Sid.to_int sw) in
      if not (Edge_switch.is_up es) then Edge_switch.set_up es true)

let fail_control_link t sw =
  with_lazy t (fun p ->
      Channel.fail p.ctrl_up.(Sid.to_int sw);
      Channel.fail p.ctrl_down.(Sid.to_int sw))

let repair_control_link t sw =
  with_lazy t (fun p ->
      let i = Sid.to_int sw in
      Channel.repair p.ctrl_up.(i);
      Channel.repair p.ctrl_down.(i);
      Hashtbl.remove p.relay i;
      Edge_switch.set_control_relay p.switches.(i) None)

let peer_key a b = (Sid.to_int a, Sid.to_int b)

let fail_peer_key t (p : lazy_plane) key =
  match Hashtbl.find_opt p.peer key with
  | Some ch -> Channel.fail ch
  | None ->
      (* Create-and-fail so future sends on this pair also drop. *)
      let ch =
        Channel.create ~strict:true t.engine
          ~latency:t.params.Params.peer_link_latency
          ~name:(Printf.sprintf "peer-%d-%d" (fst key) (snd key))
          ()
      in
      set_proto_codec ch;
      apply_loss p.loss_rng !(p.peer_loss) ch;
      Channel.set_receiver ch (fun msg ->
          Edge_switch.handle_peer_message
            p.switches.(snd key)
            ~from:(Sid.of_int (fst key))
            msg);
      Channel.fail ch;
      Hashtbl.replace p.peer key ch

let fail_peer_link t a b =
  with_lazy t (fun p ->
      List.iter (fail_peer_key t p) [ peer_key a b; peer_key b a ])

let fail_peer_link_directed t ~src ~dst =
  with_lazy t (fun p -> fail_peer_key t p (peer_key src dst))

let repair_peer_link t a b =
  with_lazy t (fun p ->
      List.iter
        (fun key ->
          match Hashtbl.find_opt p.peer key with
          | Some ch -> Channel.repair ch
          | None -> ())
        [ peer_key a b; peer_key b a ])

let fail_data_path t ~src ~dst ~notify =
  Underlay.fail_path t.underlay
    ~src:(Topology.underlay_ip t.topo src)
    ~dst:(Topology.underlay_ip t.topo dst);
  if notify then
    with_lazy t (fun p -> Controller.notify_path_failure p.controller ~src ~dst)

let repair_data_path t ~src ~dst =
  Underlay.repair_path t.underlay
    ~src:(Topology.underlay_ip t.topo src)
    ~dst:(Topology.underlay_ip t.topo dst)

(* --- channel loss injection ---------------------------------------------- *)

let set_control_loss t spec =
  with_lazy t (fun p ->
      Array.iter (apply_loss p.loss_rng spec) p.ctrl_up;
      Array.iter (apply_loss p.loss_rng spec) p.ctrl_down)

let set_peer_loss t spec =
  with_lazy t (fun p ->
      p.peer_loss := spec;
      List.iter
        (fun (_, ch) -> apply_loss p.loss_rng spec ch)
        (Det.bindings_sorted ~cmp:Det.pair_compare p.peer))

(* --- aggregate channel / reliability accounting --------------------------- *)

type link_totals = {
  links_sent : int;
  links_delivered : int;
  links_dropped : int;
  links_lost : int;
  links_duplicated : int;
  links_bytes_sent : int;
  links_bytes_delivered : int;
}

let link_zero =
  {
    links_sent = 0;
    links_delivered = 0;
    links_dropped = 0;
    links_lost = 0;
    links_duplicated = 0;
    links_bytes_sent = 0;
    links_bytes_delivered = 0;
  }

let link_add acc ch =
  {
    links_sent = acc.links_sent + Channel.sent ch;
    links_delivered = acc.links_delivered + Channel.delivered ch;
    links_dropped = acc.links_dropped + Channel.dropped ch;
    links_lost = acc.links_lost + Channel.lost ch;
    links_duplicated = acc.links_duplicated + Channel.duplicated ch;
    links_bytes_sent = acc.links_bytes_sent + Channel.bytes_sent ch;
    links_bytes_delivered =
      acc.links_bytes_delivered + Channel.bytes_delivered ch;
  }

let link_stats t =
  match t.plane with
  | Lazy_plane p ->
      let acc = Array.fold_left link_add link_zero p.ctrl_up in
      let acc = Array.fold_left link_add acc p.ctrl_down in
      List.fold_left
        (fun acc (_, ch) -> link_add acc ch)
        acc
        (Det.bindings_sorted ~cmp:Det.pair_compare p.peer)
  | Of_plane p ->
      let acc = Array.fold_left link_add link_zero p.of_ctrl_up in
      Array.fold_left link_add acc p.of_ctrl_down

(* Bytes sent on the controller-facing channels only — by construction
   equal to the recorder's [total_ctrl_bytes] and the tracer's
   [ctrl_bytes] (the wire hook fires exactly when these counters grow);
   the cross-check test pins the equality. *)
let ctrl_bytes_sent t =
  let sum acc arr =
    Array.fold_left (fun acc ch -> acc + Channel.bytes_sent ch) acc arr
  in
  match t.plane with
  | Lazy_plane p -> sum (sum 0 p.ctrl_up) p.ctrl_down
  | Of_plane p -> sum (sum 0 p.of_ctrl_up) p.of_ctrl_down

let reliability_stats t =
  match t.plane with
  | Of_plane _ -> Reliable.stats_zero
  | Lazy_plane p ->
      Array.fold_left
        (fun acc sw -> Reliable.stats_add acc (Edge_switch.reliable_stats sw))
        (Controller.reliable_stats p.controller)
        p.switches
