(** Domain-parallel LazyCtrl network: the lazy control plane sharded by
    Local Control Group onto {!Lazyctrl_sim.Shard_engine}.

    Switches/hosts partition by a static [Sgi.ini_group] over the
    placement-derived intensity prior ({!Network.default_intensity}),
    packed onto a fixed number of logical switch shards; the controller,
    its service queue and its recorder own one extra shard.  LCG
    locality keeps most events shard-local (the paper's thesis applied
    to the simulator); everything that crosses — control traffic, peer
    adverts, encapsulated underlay frames, remote flow-completion
    receipts — is an explicit exchange post carrying its real link
    latency, every one of which is at least the synchronization window.

    The logical partition never depends on the physical domain count, so
    {!fingerprint} is byte-identical at every [domains] value; the
    qcheck property in [test/test_shard.ml] and the CI multicore matrix
    (`LAZYCTRL_DOMAINS=1,2,4`) enforce this.

    Compared to {!Network}, this plane does not model channel loss,
    control-link failover relays, or host migration — the single-domain
    [Network] remains the full-fidelity reference; chaos enters here
    through {!fail_switch}/{!repair_switch} and the controller's
    cross-shard reboot/relay reactions. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_metrics

type t

type stats = {
  engine : Shard_engine.stats;
  flows_started : int;
  flows_delivered : int;
  underlay_delivered : int;  (** encapsulated frames routed cross-switch *)
  underlay_dropped : int;  (** plain frames or unknown endpoints *)
}

val create :
  ?params:Params.t ->
  ?controller_config:Controller.config ->
  ?domains:int ->
  ?shards:int ->
  ?window:Time.t ->
  ?trace:bool ->
  topo:Topology.t ->
  horizon:Time.t ->
  unit ->
  t
(** [shards] is the number of {e logical} switch shards (default 4,
    clamped to the switch count) — fixed independently of [domains] so
    results do not depend on parallelism.  [domains] defaults to the
    [LAZYCTRL_DOMAINS] environment variable ({!Shard_engine.default_domains}).
    [window] (default: the smallest cross-shard link latency in
    [params]) may only shrink that bound — a larger window would break
    the conservative rule, and raises [Invalid_argument].  [trace] gives
    every logical shard its own flight recorder (see {!tracers}).
    Call {!bootstrap} before running. *)

val bootstrap : t -> unit
(** Push the frozen LCG partition to the controller via
    [Controller.bootstrap_shard]: registers every group, pushes
    [Group_config] to each switch (cross-shard posts), and starts the
    echo timers.  The grouping daemon stays inert, so the partition —
    and with it the shard map — never changes mid-run. *)

val run : t -> until:Time.t -> unit
val now : t -> Time.t

val shutdown : t -> unit
(** Join the worker domains (idempotent); required between repeated
    runs in benches and property tests. *)

val start_flow :
  t -> src:Ids.Host_id.t -> dst:Ids.Host_id.t -> bytes:int -> packets:int -> unit
(** Initiate a flow from the source host's shard.  Call between runs (or
    from the owning shard's own callbacks), never from another shard's
    window. *)

val fail_switch : t -> ?at:Time.t -> Ids.Switch_id.t -> unit
(** Chaos hook: power the switch off immediately (between runs) or at
    [at] on its owning shard's engine.  The controller's echo monitor
    notices cross-shard and reacts with reboot/failover posts. *)

val repair_switch : t -> ?at:Time.t -> Ids.Switch_id.t -> unit

val shard_of : t -> Ids.Switch_id.t -> int
(** Owning logical shard of a switch (controller shard =
    {!switch_shards}). *)

val switch_shards : t -> int
val domains : t -> int
val window : t -> Time.t

val grouping_assignment : t -> int array
(** The frozen LCG assignment (switch index -> dense group id). *)

val controller : t -> Controller.t
val recorders : t -> Recorder.t array
(** Per logical shard, controller shard last. *)

val tracers : t -> Lazyctrl_trace.Tracer.t array
(** Per logical shard (disabled singletons unless [~trace:true]); merge
    or export per shard at analysis time. *)

val switch_stats_sum : t -> Edge_switch.stats
val flows_started : t -> int
val flows_delivered : t -> int
val stats : t -> stats

val fingerprint : t -> string
(** Byte-exact observable state in logical-shard order: per-shard
    recorder series, summed switch stats, controller stats, the frozen
    grouping with its shard map, flow accounting and exchange totals.
    Equal across double runs {e and} across domain counts. *)
