(* Domain-parallel LazyCtrl network over {!Lazyctrl_sim.Shard_engine}.

   The partition is the paper's own: switches shard by Local Control
   Group (a static [Sgi.ini_group] over the placement-derived intensity
   prior), because LCG locality means most events — flow-table hits,
   L-FIB/G-FIB forwarding, intra-group ARP, state adverts — stay inside
   one shard.  Groups are packed onto [shards] logical switch shards by
   balanced greedy assignment; the controller (plus its service queue
   and measurement recorder) owns one extra logical shard.  Logical
   shards are fixed independently of the physical domain count, which is
   what makes the fingerprint byte-identical at any [domains] value.

   Every cross-shard interaction is an explicit exchange message with
   its real link latency (control 1 ms, peer 150 us, underlay 250 us —
   all >= the window, so the conservative rule holds by construction):

   - switch -> controller:  post + control latency, then the service
     queue models controller CPU on the controller shard
   - controller -> switch:  config pushes, flow mods, packet outs,
     reboots and relay requests post back to the owning shard
   - switch -> switch:      peer adverts/gossip and encapsulated
     underlay frames post to the destination switch's shard
   - host flow accounting:  per-shard {!Host_model}s carve disjoint
     flow-id spaces (base = shard, stride = #switch shards); a first
     delivery on a foreign shard posts a completion receipt carrying the
     delivery time back to the owner, which records the latency sample

   Single-domain [Network] remains the full-fidelity reference (channel
   loss, link failover, migration); this plane trades those injection
   points for scale and keeps the same protocol stack. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_metrics
module Prng = Lazyctrl_util.Prng
module Sid = Ids.Switch_id
module Tracer = Lazyctrl_trace.Tracer

type t = {
  params : Params.t;
  topo : Topology.t;
  sharder : Shard_engine.t;
  n_switch_shards : int; (* controller shard index = n_switch_shards *)
  shard_of : int array; (* switch -> logical shard *)
  grouping : Lazyctrl_grouping.Grouping.t;
  switches : Edge_switch.t array;
  controller : Controller.t;
  models : Host_model.t array; (* per switch shard *)
  recorders : Recorder.t array; (* per logical shard, controller last *)
  tracers : Tracer.t array; (* per logical shard, controller last *)
  u_delivered : int array; (* per switch shard underlay counters *)
  u_dropped : int array;
}

type stats = {
  engine : Shard_engine.stats;
  flows_started : int;
  flows_delivered : int;
  underlay_delivered : int;
  underlay_dropped : int;
}

(* Conservative window: no cross-shard post may undercut it, so it is the
   smallest cross-shard link latency in play. *)
let window_of (params : Params.t) =
  Time.min params.Params.control_link_latency
    (Time.min params.Params.peer_link_latency params.Params.underlay_latency)

(* Balanced greedy packing: biggest group first onto the least-loaded
   shard, ties to the lowest shard index — a pure function of the
   grouping, so identical at every domain count. *)
let assign_groups grouping ~n_shards =
  let module Grouping = Lazyctrl_grouping.Grouping in
  let n_groups = Grouping.n_groups grouping in
  let sizes = Grouping.sizes grouping in
  let order = Array.init n_groups (fun g -> g) in
  Array.sort
    (fun a b ->
      let c = Int.compare sizes.(b) sizes.(a) in
      if c <> 0 then c else Int.compare a b)
    order;
  let load = Array.make n_shards 0 in
  let shard_of_group = Array.make n_groups 0 in
  Array.iter
    (fun g ->
      let best = ref 0 in
      for s = 1 to n_shards - 1 do
        if load.(s) < load.(!best) then best := s
      done;
      shard_of_group.(g) <- !best;
      load.(!best) <- load.(!best) + sizes.(g))
    order;
  let assignment = Grouping.assignment grouping in
  Array.map (fun g -> shard_of_group.(g)) assignment

let fast_path_latency t ~src ~dst =
  let two_ports = Time.scale t.params.Params.host_port_latency 2.0 in
  if Sid.equal (Topology.location t.topo src) (Topology.location t.topo dst)
  then two_ports
  else Time.add two_ports t.params.Params.underlay_latency

let record_delivery t ~shard (meta : Host_model.flow_meta) ~delivered_at =
  let r = t.recorders.(shard) in
  Recorder.record_first_packet_latency r (Time.diff delivered_at meta.started);
  if meta.Host_model.packets > 1 then
    Recorder.record_fast_path_latency r
      ~n:(meta.Host_model.packets - 1)
      (fast_path_latency t ~src:meta.Host_model.src ~dst:meta.Host_model.dst)

(* Frame on a host port of a shard-[s] switch: dispatch to the shard's
   host model; a remote-owned first delivery posts a receipt carrying the
   delivery time back to the owning shard, which holds the flow metadata
   and the recorder the sample belongs to. *)
let host_delivery t ~shard host pkt =
  match Host_model.deliver t.models.(shard) ~to_:host pkt with
  | Host_model.Data_first meta ->
      record_delivery t ~shard meta
        ~delivered_at:(Engine.now (Shard_engine.engine t.sharder shard))
  | Host_model.Data_remote id ->
      let owner = id mod t.n_switch_shards in
      let delivered_at = Engine.now (Shard_engine.engine t.sharder shard) in
      Shard_engine.post t.sharder ~src:shard ~dst:owner
        ~at:(Time.add delivered_at (Shard_engine.window t.sharder))
        (fun () ->
          match Host_model.complete_remote t.models.(owner) id with
          | Some meta -> record_delivery t ~shard:owner meta ~delivered_at
          | None -> ())
  | Host_model.Data_duplicate | Host_model.Arp_handled
  | Host_model.Not_for_host ->
      ()

let create ?(params = Params.default)
    ?(controller_config = Controller.default_config) ?domains ?shards ?window
    ?(trace = false) ~topo ~horizon () =
  let n = Topology.n_switches topo in
  let n_switch_shards =
    match shards with Some s -> max 1 (min s n) | None -> max 1 (min 4 n)
  in
  let window =
    let bound = window_of params in
    match window with
    | None -> bound
    | Some w ->
        if Time.(w > bound) then
          invalid_arg
            "Shard_net.create: window exceeds the smallest cross-shard latency"
        else w
  in
  let ctrl_shard = n_switch_shards in
  let sharder =
    Shard_engine.create ?domains ~shards:(n_switch_shards + 1) ~window ()
  in
  let engines = Array.init (n_switch_shards + 1) (Shard_engine.engine sharder) in
  let rng = Prng.create params.Params.seed in
  (* Static LCG partition, frozen for the run: the grouping daemon stays
     inert under [bootstrap_shard], so switches never migrate shards. *)
  let grouping =
    Lazyctrl_grouping.Sgi.ini_group
      ~rng:(Prng.named rng "shard-grouping")
      ~limit:controller_config.Controller.group_size_limit
      (Network.default_intensity topo)
  in
  let shard_of = assign_groups grouping ~n_shards:n_switch_shards in
  let tracers =
    Array.init (n_switch_shards + 1) (fun _ ->
        if trace then Tracer.create () else Tracer.disabled)
  in
  let recorders =
    Array.init (n_switch_shards + 1) (fun s ->
        Recorder.create engines.(s) ~horizon ())
  in
  let switches : Edge_switch.t option array = Array.make n None in
  let get_switch i = Option.get switches.(i) in
  let service =
    Service_queue.create engines.(ctrl_shard)
      ~service_time:params.Params.controller_service
  in
  let post = Shard_engine.post sharder in
  let controller_env =
    {
      Controller.engine = engines.(ctrl_shard);
      send_switch =
        (fun sw msg ->
          let i = Sid.to_int sw in
          post ~src:ctrl_shard ~dst:shard_of.(i)
            ~at:
              (Time.add
                 (Engine.now engines.(ctrl_shard))
                 params.Params.control_link_latency)
            (fun () -> Edge_switch.handle_controller_message (get_switch i) msg));
      reboot_switch =
        (fun sw ->
          let i = Sid.to_int sw in
          post ~src:ctrl_shard ~dst:shard_of.(i)
            ~at:
              (Time.add (Engine.now engines.(ctrl_shard)) params.Params.reboot_delay)
            (fun () -> Edge_switch.set_up (get_switch i) true));
      request_relay =
        (fun sw ~via ->
          let i = Sid.to_int sw in
          post ~src:ctrl_shard ~dst:shard_of.(i)
            ~at:
              (Time.add
                 (Engine.now engines.(ctrl_shard))
                 params.Params.control_link_latency)
            (fun () -> Edge_switch.set_control_relay (get_switch i) via));
      rng = Prng.named rng "controller";
    }
  in
  let controller =
    Controller.create ~tracer:tracers.(ctrl_shard) controller_env
      controller_config ~n_switches:n
  in
  let u_delivered = Array.make n_switch_shards 0 in
  let u_dropped = Array.make n_switch_shards 0 in
  let t_ref = ref None in
  for i = 0 to n - 1 do
    let self = Sid.of_int i in
    let s = shard_of.(i) in
    let engine = engines.(s) in
    let env =
      {
        Edge_switch.engine;
        send_controller =
          (fun msg ->
            post ~src:s ~dst:ctrl_shard
              ~at:(Time.add (Engine.now engine) params.Params.control_link_latency)
              (fun () ->
                Service_queue.submit service (fun () ->
                    Controller.handle_message controller ~from:self msg));
            true);
        send_peer =
          (fun p msg ->
            if not (Sid.equal p self) then
              let j = Sid.to_int p in
              post ~src:s ~dst:shard_of.(j)
                ~at:(Time.add (Engine.now engine) params.Params.peer_link_latency)
                (fun () ->
                  Edge_switch.handle_peer_message (get_switch j) ~from:self msg));
        send_underlay =
          (fun pkt ->
            match pkt with
            | Packet.Encap { outer_dst; _ } -> (
                match Topology.switch_of_underlay_ip topo outer_dst with
                | Some dst_sw ->
                    let j = Sid.to_int dst_sw in
                    u_delivered.(s) <- u_delivered.(s) + 1;
                    post ~src:s ~dst:shard_of.(j)
                      ~at:
                        (Time.add (Engine.now engine) params.Params.underlay_latency)
                      (fun () -> Edge_switch.handle_underlay (get_switch j) pkt)
                | None -> u_dropped.(s) <- u_dropped.(s) + 1)
            | Packet.Plain _ -> u_dropped.(s) <- u_dropped.(s) + 1);
        deliver_local =
          (fun host pkt ->
            ignore
              (Engine.schedule engine ~after:params.Params.host_port_latency
                 (fun () ->
                   match !t_ref with
                   | Some t -> host_delivery t ~shard:s host pkt
                   | None -> ())));
        underlay_ip_of = (fun sw -> Topology.underlay_ip topo sw);
      }
    in
    let sw =
      Edge_switch.create ~tracer:tracers.(s)
        ~rng:(Prng.named rng "switch-sessions")
        env params.Params.switch_config ~self
    in
    switches.(i) <- Some sw
  done;
  let models =
    Array.init n_switch_shards (fun s ->
        Host_model.create ~flow_id_base:s ~flow_id_stride:n_switch_shards
          engines.(s)
          ~send:(fun (h : Host.t) p ->
            let loc = Sid.to_int (Topology.location topo h.Host.id) in
            ignore
              (Engine.schedule engines.(s) ~after:params.Params.host_port_latency
                 (fun () -> Edge_switch.handle_from_host (get_switch loc) h p)))
          ~arp_ttl:params.Params.arp_cache_ttl
          ~stack_delay:params.Params.host_stack_delay)
  in
  let t =
    {
      params;
      topo;
      sharder;
      n_switch_shards;
      shard_of;
      grouping;
      switches = Array.map Option.get switches;
      controller;
      models;
      recorders;
      tracers;
      u_delivered;
      u_dropped;
    }
  in
  t_ref := Some t;
  (* Attach every host to its switch (shard-local learning + adverts). *)
  List.iter
    (fun (h : Host.t) ->
      let loc = Sid.to_int (Topology.location topo h.id) in
      Edge_switch.attach_host t.switches.(loc) h)
    (Topology.hosts topo);
  Controller.set_request_hook controller (fun () ->
      Recorder.on_controller_request recorders.(ctrl_shard));
  Controller.set_update_hook controller (fun () ->
      Recorder.on_grouping_update recorders.(ctrl_shard));
  t

let bootstrap t =
  let module Grouping = Lazyctrl_grouping.Grouping in
  let groups =
    List.init (Grouping.n_groups t.grouping) (fun g ->
        (Ids.Group_id.of_int g, Grouping.members t.grouping (Ids.Group_id.of_int g)))
  in
  Controller.bootstrap_shard t.controller ~groups

let shard_of t sw = t.shard_of.(Sid.to_int sw)
let switch_shards t = t.n_switch_shards
let domains t = Shard_engine.domains t.sharder
let window t = Shard_engine.window t.sharder
let grouping_assignment t = Lazyctrl_grouping.Grouping.assignment t.grouping
let recorders t = t.recorders
let tracers t = t.tracers
let controller t = t.controller

let start_flow t ~src ~dst ~bytes ~packets =
  let src = Topology.host t.topo src and dst = Topology.host t.topo dst in
  let s = t.shard_of.(Sid.to_int (Topology.location t.topo src.Host.id)) in
  Host_model.start_flow t.models.(s) ~src ~dst ~bytes ~packets

let run t ~until = Shard_engine.run t.sharder ~until
let now t = Shard_engine.now t.sharder
let shutdown t = Shard_engine.shutdown t.sharder

let fail_switch t ?at sw =
  let i = Sid.to_int sw in
  let e = Shard_engine.engine t.sharder t.shard_of.(i) in
  match at with
  | None -> Edge_switch.set_up t.switches.(i) false
  | Some at ->
      ignore
        (Engine.schedule_at e ~at (fun () -> Edge_switch.set_up t.switches.(i) false))

let repair_switch t ?at sw =
  let i = Sid.to_int sw in
  let e = Shard_engine.engine t.sharder t.shard_of.(i) in
  let repair () =
    if not (Edge_switch.is_up t.switches.(i)) then
      Edge_switch.set_up t.switches.(i) true
  in
  match at with
  | None -> repair ()
  | Some at -> ignore (Engine.schedule_at e ~at repair)

let zero_stats : Edge_switch.stats =
  {
    packets_from_hosts = 0;
    packets_delivered = 0;
    encap_sent = 0;
    flow_table_handled = 0;
    lfib_handled = 0;
    gfib_handled = 0;
    gfib_duplicates = 0;
    punted = 0;
    fp_drops = 0;
    arp_local_answered = 0;
    arp_group_escalated = 0;
    adverts_sent = 0;
    keepalives_sent = 0;
    misses_buffered = 0;
    misses_replayed = 0;
  }

let switch_stats_sum t =
  Array.fold_left
    (fun (acc : Edge_switch.stats) sw ->
      let s = Edge_switch.stats sw in
      {
        Edge_switch.packets_from_hosts =
          acc.packets_from_hosts + s.packets_from_hosts;
        packets_delivered = acc.packets_delivered + s.packets_delivered;
        encap_sent = acc.encap_sent + s.encap_sent;
        flow_table_handled = acc.flow_table_handled + s.flow_table_handled;
        lfib_handled = acc.lfib_handled + s.lfib_handled;
        gfib_handled = acc.gfib_handled + s.gfib_handled;
        gfib_duplicates = acc.gfib_duplicates + s.gfib_duplicates;
        punted = acc.punted + s.punted;
        fp_drops = acc.fp_drops + s.fp_drops;
        arp_local_answered = acc.arp_local_answered + s.arp_local_answered;
        arp_group_escalated = acc.arp_group_escalated + s.arp_group_escalated;
        adverts_sent = acc.adverts_sent + s.adverts_sent;
        keepalives_sent = acc.keepalives_sent + s.keepalives_sent;
        misses_buffered = acc.misses_buffered + s.misses_buffered;
        misses_replayed = acc.misses_replayed + s.misses_replayed;
      })
    zero_stats t.switches

let flows_started t =
  Array.fold_left (fun acc m -> acc + Host_model.flows_started m) 0 t.models

let flows_delivered t =
  Array.fold_left (fun acc m -> acc + Host_model.flows_delivered m) 0 t.models

let stats t =
  {
    engine = Shard_engine.stats t.sharder;
    flows_started = flows_started t;
    flows_delivered = flows_delivered t;
    underlay_delivered = Array.fold_left ( + ) 0 t.u_delivered;
    underlay_dropped = Array.fold_left ( + ) 0 t.u_dropped;
  }

(* Byte-exact observable state, concatenated in logical-shard order.
   Everything here is a pure function of (seed, topology, scenario), so
   it must not change with the domain count — the property test and the
   CI multicore matrix both compare these strings across domain counts
   and across double runs. *)
let fingerprint t =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Array.iteri
    (fun s r ->
      addf "shard[%d] requests=%d updates=%d\n" s (Recorder.total_requests r)
        (Recorder.total_updates r);
      Array.iteri (fun i v -> addf "s%d.rps[%d]=%h\n" s i v) (Recorder.workload_rps r);
      Array.iteri
        (fun i v -> addf "s%d.lat[%d]=%h\n" s i v)
        (Recorder.first_latency_ms_series r);
      Array.iteri
        (fun i v -> addf "s%d.upd[%d]=%d\n" s i v)
        (Recorder.updates_per_hour r))
    t.recorders;
  let s = switch_stats_sum t in
  addf
    "sw: from_hosts=%d delivered=%d encap=%d ft=%d lfib=%d gfib=%d dup=%d \
     punt=%d fp=%d arp_l=%d arp_g=%d adv=%d ka=%d mb=%d mr=%d\n"
    s.Edge_switch.packets_from_hosts s.packets_delivered s.encap_sent
    s.flow_table_handled s.lfib_handled s.gfib_handled s.gfib_duplicates
    s.punted s.fp_drops s.arp_local_answered s.arp_group_escalated
    s.adverts_sent s.keepalives_sent s.misses_buffered s.misses_replayed;
  let cs = Controller.stats t.controller in
  addf
    "ctrl: req=%d pin=%d arp=%d sr=%d ra=%d fm=%d po=%d relay=%d flood=%d \
     inc=%d full=%d fo=%d pre=%d\n"
    cs.Controller.requests cs.packet_ins cs.arp_escalations cs.state_reports
    cs.ring_alarms cs.flow_mods_sent cs.packet_outs_sent cs.arp_relays
    cs.floods cs.grouping_updates cs.full_regroups cs.failovers_handled
    cs.preloaded_rules;
  Array.iteri
    (fun sw gid -> addf "group[%d]=%d shard=%d\n" sw gid t.shard_of.(sw))
    (Lazyctrl_grouping.Grouping.assignment t.grouping);
  addf "flows started=%d delivered=%d\n" (flows_started t) (flows_delivered t);
  let es = Shard_engine.stats t.sharder in
  addf "exchange: windows=%d messages=%d events=%d\n" es.Shard_engine.windows
    es.messages es.events;
  Buffer.contents buf
