(** The LazyCtrl central controller (§III-B2, §IV-B).

    Responsibilities, exactly the paper's list: maintain the C-LIB from
    designated switches' state reports; manage the grouping of edge
    switches with SGI (initial grouping plus the background incremental
    daemon, triggered by ≥30% workload growth and rate-limited to one
    update per two minutes); set up flow rules for inter-group traffic and
    relay cross-group ARP within the tenant's scope; and run failure
    detection/failover over the wheel. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_graph
open Lazyctrl_openflow
open Lazyctrl_switch
module Prng = Lazyctrl_util.Prng

type msg = Proto.t Message.t

type env = {
  engine : Engine.t;
  send_switch : Ids.Switch_id.t -> msg -> unit;  (** control links, downstream *)
  reboot_switch : Ids.Switch_id.t -> unit;
      (** remote management action for §III-E3 switch failover *)
  request_relay : Ids.Switch_id.t -> via:Ids.Switch_id.t option -> unit;
      (** control-link failover: tell a switch to route its control
          traffic through a ring neighbour (§III-E2) *)
  rng : Prng.t;
}

type config = {
  group_size_limit : int;
  sync_period : Time.t;        (** handed to switches in [Group_config] *)
  keepalive_period : Time.t;
  echo_period : Time.t;        (** controller → switch liveness probes *)
  echo_timeout : Time.t;
  daemon_period : Time.t;      (** grouping-daemon evaluation cadence *)
  min_update_interval : Time.t;     (** the paper's 2 minutes *)
  workload_growth_trigger : float;  (** the paper's 0.30 *)
  full_regroup_growth : float;
      (** growth beyond which IniGroup is re-run instead of IncUpdate *)
  max_inc_iterations : int;
  incremental_updates : bool;  (** false = the paper's "static" runs *)
  flow_idle_timeout : Time.t;  (** for installed inter-group rules *)
  intensity_decay : float;     (** per-daemon-tick decay of the matrix *)
  preload_on_regroup : bool;
      (** Appendix B: bridge regrouping windows with temporary rules so
          traffic to departing peers does not punt while state settles *)
  reliable_state : bool;
      (** deliver [Group_config]/[Group_sync] over per-switch
          {!Lazyctrl_openflow.Reliable} sessions; flow mods and packet
          outs stay fire-and-forget like plain OpenFlow *)
  retrans : Reliable.config;
}

val default_config : config

type stats = {
  requests : int;        (** workload-relevant messages processed *)
  packet_ins : int;
  arp_escalations : int;
  state_reports : int;
  ring_alarms : int;
  flow_mods_sent : int;
  packet_outs_sent : int;
  buffer_outs_sent : int;
      (** replies that released a parked packet by buffer id instead of
          echoing its bytes back down the control link (DESIGN.md §13) *)
  arp_relays : int;      (** cross-group ARP broadcasts relayed *)
  floods : int;          (** unknown-destination tenant-scoped floods *)
  grouping_updates : int;     (** IncUpdate rounds applied (Fig. 8) *)
  full_regroups : int;
  failovers_handled : int;
  preloaded_rules : int;      (** Appendix B seamless-update preloads *)
}

type t

val create :
  ?tracer:Lazyctrl_trace.Tracer.t -> env -> config -> n_switches:int -> t
(** [tracer] (default disabled) receives a flight-recorder event per
    controller request, C-LIB lookup outcome (install / flood / ARP
    relay), regroup, and failover verdict. *)

val bootstrap : t -> intensity:Wgraph.t -> unit
(** Initial grouping from history statistics (the paper seeds SGI with the
    first hour of traffic): runs IniGroup, selects designated switches and
    backups, pushes [Group_config] to every switch, starts the echo and
    daemon timers. *)

val handle_message : t -> from:Ids.Switch_id.t -> msg -> unit
(** Entry point for everything arriving on control and state links. *)

val force_regroup : t -> unit
(** Operator action: run IniGroup on the current intensity matrix now and
    push the resulting configuration (counts as a full regroup). *)

val notify_path_failure :
  t -> src:Ids.Switch_id.t -> dst:Ids.Switch_id.t -> unit
(** Data-path failure (§III-E2): install detour rules on [src] sending
    traffic for [dst]'s hosts through a healthy member of [dst]'s group,
    whose G-FIB completes delivery. *)

val grouping : t -> Lazyctrl_grouping.Grouping.t option
val group_config_of : t -> Ids.Switch_id.t -> Proto.group_config option
val clib : t -> Clib.t
val monitor : t -> Failover.Monitor.t
val stats : t -> stats

val reliable_stats : t -> Reliable.stats
(** Aggregate over the per-switch reliable sessions. *)

val set_request_hook : t -> (unit -> unit) -> unit
(** Called once per workload-relevant request — the measurement tap for
    the Fig. 7 controller-workload series. *)

val set_update_hook : t -> (unit -> unit) -> unit
(** Called once per applied grouping update (Fig. 8). *)

val set_failover_hook :
  t -> (Ids.Switch_id.t -> Failover.verdict -> unit) -> unit
(** Called when the controller acts on a non-healthy verdict — the
    observable record of Table I end-to-end inference. *)

val current_intensity : t -> Wgraph.t
(** The decayed intensity matrix the daemon currently believes. *)

(** {2 Controller-cluster sharding}

    A cluster member is an ordinary controller instance owning a slice of
    the LCGs. The coordination layer ({!Lazyctrl_cluster}) assigns and
    migrates slices; these entry points are what it drives. *)

val bootstrap_shard :
  t -> groups:(Ids.Group_id.t * Ids.Switch_id.t list) list -> unit
(** Like {!bootstrap}, but with an externally assigned slice of groups
    instead of running IniGroup over the whole fabric: registers exactly
    the slice's switches in the monitor, pushes their configs, and starts
    the echo/daemon timers over that slice. The grouping daemon stays
    inert (no {!grouping} state), so a shard never regroups switches it
    does not own. *)

val adopt_groups :
  t -> groups:(Ids.Group_id.t * Ids.Switch_id.t list) list -> unit
(** Take ownership of additional groups at runtime (EASM migration or
    failover re-homing): register the members and push fresh configs.
    The switches themselves are claimed via {!Proto.Rehome} by the
    coordination layer before this is called. *)

val release_group : t -> Ids.Group_id.t -> Ids.Switch_id.t list
(** Hand a group off: forget its configs and verdicts, unregister its
    members from the monitor, reset their reliable sessions, and return
    the member list (for the new owner to adopt). *)

val shutdown : t -> unit
(** Cancel the echo and daemon timers — a killed cluster member must go
    silent, not keep probing switches it no longer owns. *)

val apply_remote_delta : t -> Proto.lfib_delta -> unit
(** Apply a C-LIB delta learnt from a cluster peer (without re-firing the
    delta hook, so gossip does not echo around the mesh). *)

val set_clib_delta_hook : t -> (Proto.lfib_delta -> unit) -> unit
(** Called for every locally learnt C-LIB delta (state reports and direct
    adverts) — the coordination layer broadcasts these to peers so every
    member's C-LIB converges on the global view. *)

val set_arp_relay_hook :
  t -> (origin:Ids.Switch_id.t -> Packet.t -> unit) -> unit
(** Called when an ARP relay finds no owner in the C-LIB, after
    broadcasting into locally configured groups — the coordination layer
    forwards the request to peers hosting the tenant's other groups. *)

val handle_remote_arp : t -> origin:Ids.Switch_id.t -> Packet.t -> unit
(** Entry point for an ARP request relayed by a cluster peer: broadcast
    into locally configured tenant groups only (never re-fires the
    relay hook). *)
