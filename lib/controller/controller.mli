(** The LazyCtrl central controller (§III-B2, §IV-B).

    Responsibilities, exactly the paper's list: maintain the C-LIB from
    designated switches' state reports; manage the grouping of edge
    switches with SGI (initial grouping plus the background incremental
    daemon, triggered by ≥30% workload growth and rate-limited to one
    update per two minutes); set up flow rules for inter-group traffic and
    relay cross-group ARP within the tenant's scope; and run failure
    detection/failover over the wheel. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_graph
open Lazyctrl_openflow
open Lazyctrl_switch
module Prng = Lazyctrl_util.Prng

type msg = Proto.t Message.t

type env = {
  engine : Engine.t;
  send_switch : Ids.Switch_id.t -> msg -> unit;  (** control links, downstream *)
  reboot_switch : Ids.Switch_id.t -> unit;
      (** remote management action for §III-E3 switch failover *)
  request_relay : Ids.Switch_id.t -> via:Ids.Switch_id.t option -> unit;
      (** control-link failover: tell a switch to route its control
          traffic through a ring neighbour (§III-E2) *)
  rng : Prng.t;
}

type config = {
  group_size_limit : int;
  sync_period : Time.t;        (** handed to switches in [Group_config] *)
  keepalive_period : Time.t;
  echo_period : Time.t;        (** controller → switch liveness probes *)
  echo_timeout : Time.t;
  daemon_period : Time.t;      (** grouping-daemon evaluation cadence *)
  min_update_interval : Time.t;     (** the paper's 2 minutes *)
  workload_growth_trigger : float;  (** the paper's 0.30 *)
  full_regroup_growth : float;
      (** growth beyond which IniGroup is re-run instead of IncUpdate *)
  max_inc_iterations : int;
  incremental_updates : bool;  (** false = the paper's "static" runs *)
  flow_idle_timeout : Time.t;  (** for installed inter-group rules *)
  intensity_decay : float;     (** per-daemon-tick decay of the matrix *)
  preload_on_regroup : bool;
      (** Appendix B: bridge regrouping windows with temporary rules so
          traffic to departing peers does not punt while state settles *)
  reliable_state : bool;
      (** deliver [Group_config]/[Group_sync] over per-switch
          {!Lazyctrl_openflow.Reliable} sessions; flow mods and packet
          outs stay fire-and-forget like plain OpenFlow *)
  retrans : Reliable.config;
}

val default_config : config

type stats = {
  requests : int;        (** workload-relevant messages processed *)
  packet_ins : int;
  arp_escalations : int;
  state_reports : int;
  ring_alarms : int;
  flow_mods_sent : int;
  packet_outs_sent : int;
  arp_relays : int;      (** cross-group ARP broadcasts relayed *)
  floods : int;          (** unknown-destination tenant-scoped floods *)
  grouping_updates : int;     (** IncUpdate rounds applied (Fig. 8) *)
  full_regroups : int;
  failovers_handled : int;
  preloaded_rules : int;      (** Appendix B seamless-update preloads *)
}

type t

val create :
  ?tracer:Lazyctrl_trace.Tracer.t -> env -> config -> n_switches:int -> t
(** [tracer] (default disabled) receives a flight-recorder event per
    controller request, C-LIB lookup outcome (install / flood / ARP
    relay), regroup, and failover verdict. *)

val bootstrap : t -> intensity:Wgraph.t -> unit
(** Initial grouping from history statistics (the paper seeds SGI with the
    first hour of traffic): runs IniGroup, selects designated switches and
    backups, pushes [Group_config] to every switch, starts the echo and
    daemon timers. *)

val handle_message : t -> from:Ids.Switch_id.t -> msg -> unit
(** Entry point for everything arriving on control and state links. *)

val force_regroup : t -> unit
(** Operator action: run IniGroup on the current intensity matrix now and
    push the resulting configuration (counts as a full regroup). *)

val notify_path_failure :
  t -> src:Ids.Switch_id.t -> dst:Ids.Switch_id.t -> unit
(** Data-path failure (§III-E2): install detour rules on [src] sending
    traffic for [dst]'s hosts through a healthy member of [dst]'s group,
    whose G-FIB completes delivery. *)

val grouping : t -> Lazyctrl_grouping.Grouping.t option
val group_config_of : t -> Ids.Switch_id.t -> Proto.group_config option
val clib : t -> Clib.t
val monitor : t -> Failover.Monitor.t
val stats : t -> stats

val reliable_stats : t -> Reliable.stats
(** Aggregate over the per-switch reliable sessions. *)

val set_request_hook : t -> (unit -> unit) -> unit
(** Called once per workload-relevant request — the measurement tap for
    the Fig. 7 controller-workload series. *)

val set_update_hook : t -> (unit -> unit) -> unit
(** Called once per applied grouping update (Fig. 8). *)

val set_failover_hook :
  t -> (Ids.Switch_id.t -> Failover.verdict -> unit) -> unit
(** Called when the controller acts on a non-healthy verdict — the
    observable record of Table I end-to-end inference. *)

val current_intensity : t -> Wgraph.t
(** The decayed intensity matrix the daemon currently believes. *)
