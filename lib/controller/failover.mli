(** Control-plane failure detection and inference (§III-E, Table I).

    Three keep-alive streams exist per switch [Sn] on the wheel: to its
    ring predecessor ([Sn → Sn−1], the "up" peer direction), to its ring
    successor ([Sn → Sn+1], "down"), and the controller's echo over the
    control link ([Controller → Sn], answered by an echo reply). The
    inference of Table I maps the observed loss pattern to the failed
    component. The {!Monitor} collects the controller-side evidence:
    ring alarms reported by neighbours and overdue echo replies. *)

open Lazyctrl_net
open Lazyctrl_sim

type observation = {
  up_lost : bool;   (** [Sn → Sn−1] keep-alives missing *)
  down_lost : bool; (** [Sn → Sn+1] keep-alives missing *)
  ctrl_lost : bool; (** [Controller → Sn] echo unanswered *)
}

type verdict =
  | Healthy
  | Control_link_failure
  | Peer_link_up_failure
  | Peer_link_down_failure
  | Switch_failure
  | Ambiguous
      (** a pattern outside Table I (e.g. two simultaneous independent
          losses); the paper leaves these to operator escalation *)

val infer : observation -> verdict
(** Pure Table I lookup. *)

val verdict_compare : verdict -> verdict -> int
val verdict_equal : verdict -> verdict -> bool
(** Dedicated comparisons — prefer these to polymorphic [=] on verdicts. *)

val pp_verdict : Format.formatter -> verdict -> unit

module Monitor : sig
  type t

  val create : Engine.t -> echo_timeout:Time.t -> t

  val register : t -> Ids.Switch_id.t -> unit
  (** Start tracking a switch; it begins Healthy with a fresh echo. *)

  val unregister : t -> Ids.Switch_id.t -> unit

  val echo_sent : t -> Ids.Switch_id.t -> unit
  val echo_received : t -> Ids.Switch_id.t -> unit

  val ring_alarm :
    t -> missing:Ids.Switch_id.t -> direction:[ `Up | `Down ] -> unit
  (** A neighbour reported a missing keep-alive from [missing]. *)

  val ring_recovered : t -> Ids.Switch_id.t -> unit
  (** Clear ring-loss evidence (e.g. after repair). *)

  val observation : t -> Ids.Switch_id.t -> observation
  val verdict : t -> Ids.Switch_id.t -> verdict

  val sweep : t -> (Ids.Switch_id.t * verdict) list
  (** All tracked switches whose current verdict is not [Healthy]. *)
end
