(** Control-plane failure detection and inference (§III-E, Table I).

    Three keep-alive streams exist per switch [Sn] on the wheel: to its
    ring predecessor ([Sn → Sn−1], the "up" peer direction), to its ring
    successor ([Sn → Sn+1], "down"), and the controller's echo over the
    control link ([Controller → Sn], answered by an echo reply). The
    inference of Table I maps the observed loss pattern to the failed
    component. The {!Monitor} collects the controller-side evidence:
    ring alarms reported by neighbours and overdue echo replies.

    The controller-cluster layer adds a fourth stream: a second
    controller's echo spoke to the same switch. Its evidence
    ([peer_answering]) proves the switch alive, which lets the table
    split a lost master echo into {!Control_link_failure} versus
    {!Controller_failure} ([master_silent]: the master instance's own
    coordination keep-alives stopped) instead of swallowing the pattern
    as {!Ambiguous}. *)

open Lazyctrl_net
open Lazyctrl_sim

type observation = {
  up_lost : bool;  (** [Sn → Sn−1] keep-alives missing *)
  down_lost : bool;  (** [Sn → Sn+1] keep-alives missing *)
  ctrl_lost : bool;  (** [Controller → Sn] echo unanswered *)
  peer_answering : bool;
      (** a second controller's echo spoke to [Sn] still gets replies *)
  master_silent : bool;
      (** [Sn]'s master controller stopped answering coordination
          keep-alives (cluster evidence; always false standalone) *)
}

val observation_healthy : observation
(** All-clear: every flag false. *)

type verdict =
  | Healthy
  | Control_link_failure
  | Peer_link_up_failure
  | Peer_link_down_failure
  | Switch_failure
  | Ambiguous
      (** a pattern outside Table I (e.g. two simultaneous independent
          losses); the paper leaves these to operator escalation *)
  | Controller_failure
      (** the switch is alive on a second spoke but its master
          controller instance is gone — re-home, don't reboot *)

val infer : observation -> verdict
(** Pure (extended) Table I lookup. *)

val verdict_compare : verdict -> verdict -> int

val verdict_equal : verdict -> verdict -> bool
(** Dedicated comparisons — prefer these to polymorphic [=] on verdicts. *)

val pp_verdict : Format.formatter -> verdict -> unit

module Monitor : sig
  type t

  val create : Engine.t -> echo_timeout:Time.t -> t

  val register : t -> Ids.Switch_id.t -> unit
  (** Start tracking a switch; it begins Healthy with a fresh echo. *)

  val unregister : t -> Ids.Switch_id.t -> unit

  val registered : t -> Ids.Switch_id.t list
  (** Tracked switches, sorted — the set a sharded controller echoes. *)

  val echo_sent : t -> Ids.Switch_id.t -> unit
  val echo_received : t -> Ids.Switch_id.t -> unit

  val ring_alarm :
    t -> missing:Ids.Switch_id.t -> direction:[ `Up | `Down ] -> unit
  (** A neighbour reported a missing keep-alive from [missing]. *)

  val ring_recovered : t -> Ids.Switch_id.t -> unit
  (** Clear ring-loss evidence (e.g. after repair). *)

  val peer_evidence : t -> Ids.Switch_id.t -> answering:bool -> unit
  (** Cluster evidence: a backup controller's spoke to this switch is
      (or stopped) answering. *)

  val master_evidence : t -> Ids.Switch_id.t -> silent:bool -> unit
  (** Cluster evidence: the switch's master controller went silent on
      the coordination plane (or came back). *)

  val observation : t -> Ids.Switch_id.t -> observation
  val verdict : t -> Ids.Switch_id.t -> verdict

  val sweep : t -> (Ids.Switch_id.t * verdict) list
  (** All tracked switches whose current verdict is not [Healthy]. *)
end
