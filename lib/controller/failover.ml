open Lazyctrl_net
open Lazyctrl_sim

type observation = {
  up_lost : bool;
  down_lost : bool;
  ctrl_lost : bool;
  peer_answering : bool;
  master_silent : bool;
}

let observation_healthy =
  {
    up_lost = false;
    down_lost = false;
    ctrl_lost = false;
    peer_answering = false;
    master_silent = false;
  }

type verdict =
  | Healthy
  | Control_link_failure
  | Peer_link_up_failure
  | Peer_link_down_failure
  | Switch_failure
  | Ambiguous
  | Controller_failure

(* Dedicated comparisons so verdict tests never fall back to polymorphic
   equality (and so List.mem/assoc-style helpers have something to use). *)
let verdict_rank = function
  | Healthy -> 0
  | Control_link_failure -> 1
  | Peer_link_up_failure -> 2
  | Peer_link_down_failure -> 3
  | Switch_failure -> 4
  | Ambiguous -> 5
  | Controller_failure -> 6

let verdict_compare a b = Int.compare (verdict_rank a) (verdict_rank b)
let verdict_equal a b = Int.equal (verdict_rank a) (verdict_rank b)

(* Table I extended with the cluster's second spoke: when another
   controller's echo spoke still reaches the switch (peer_answering),
   the switch is provably alive, so a lost master echo splits into "the
   master instance died" (master_silent: its coordination keep-alives
   stopped too) versus "only my control link died".  Without that
   second spoke the observation reduces to the paper's 3-bit table. *)
let infer = function
  | { peer_answering = true; ctrl_lost = true; master_silent = true; _ } ->
      Controller_failure
  | { peer_answering = true; ctrl_lost = true; master_silent = false; _ } ->
      Control_link_failure
  | { up_lost = false; down_lost = false; ctrl_lost = false; _ } -> Healthy
  | { up_lost = false; down_lost = false; ctrl_lost = true; _ } ->
      Control_link_failure
  | { up_lost = true; down_lost = false; ctrl_lost = false; _ } ->
      Peer_link_up_failure
  | { up_lost = false; down_lost = true; ctrl_lost = false; _ } ->
      Peer_link_down_failure
  | { up_lost = true; down_lost = true; ctrl_lost = true; _ } -> Switch_failure
  | _ -> Ambiguous

let pp_verdict fmt v =
  Format.pp_print_string fmt
    (match v with
    | Healthy -> "healthy"
    | Control_link_failure -> "control-link failure"
    | Peer_link_up_failure -> "peer-link (up) failure"
    | Peer_link_down_failure -> "peer-link (down) failure"
    | Switch_failure -> "switch failure"
    | Ambiguous -> "ambiguous"
    | Controller_failure -> "controller failure")

module Monitor = struct
  type entry = {
    mutable last_echo_reply : Time.t;
    mutable echo_pending_since : Time.t option;
    mutable up_lost : bool;
    mutable down_lost : bool;
    mutable peer_answering : bool;
    mutable master_silent : bool;
  }

  type t = {
    engine : Engine.t;
    echo_timeout : Time.t;
    entries : entry Ids.Switch_id.Tbl.t;
  }

  let create engine ~echo_timeout =
    { engine; echo_timeout; entries = Ids.Switch_id.Tbl.create 64 }

  let register t sw =
    if not (Ids.Switch_id.Tbl.mem t.entries sw) then
      Ids.Switch_id.Tbl.replace t.entries sw
        {
          last_echo_reply = Engine.now t.engine;
          echo_pending_since = None;
          up_lost = false;
          down_lost = false;
          peer_answering = false;
          master_silent = false;
        }

  let unregister t sw = Ids.Switch_id.Tbl.remove t.entries sw

  let registered t =
    Ids.Switch_id.Tbl.fold (fun sw _ acc -> sw :: acc) t.entries []
    |> List.sort Ids.Switch_id.compare

  let find t sw = Ids.Switch_id.Tbl.find_opt t.entries sw

  let echo_sent t sw =
    match find t sw with
    | None -> ()
    | Some e ->
        if Option.is_none e.echo_pending_since then
          e.echo_pending_since <- Some (Engine.now t.engine)

  let echo_received t sw =
    match find t sw with
    | None -> ()
    | Some e ->
        e.last_echo_reply <- Engine.now t.engine;
        e.echo_pending_since <- None

  let ring_alarm t ~missing ~direction =
    match find t missing with
    | None -> ()
    | Some e -> (
        match direction with
        | `Up -> e.up_lost <- true
        | `Down -> e.down_lost <- true)

  let ring_recovered t sw =
    match find t sw with
    | None -> ()
    | Some e ->
        e.up_lost <- false;
        e.down_lost <- false

  let peer_evidence t sw ~answering =
    match find t sw with
    | None -> ()
    | Some e -> e.peer_answering <- answering

  let master_evidence t sw ~silent =
    match find t sw with
    | None -> ()
    | Some e -> e.master_silent <- silent

  let observation t sw =
    match find t sw with
    | None -> observation_healthy
    | Some e ->
        let ctrl_lost =
          match e.echo_pending_since with
          | None -> false
          | Some since ->
              Time.(Time.diff (Engine.now t.engine) since > t.echo_timeout)
        in
        {
          up_lost = e.up_lost;
          down_lost = e.down_lost;
          ctrl_lost;
          peer_answering = e.peer_answering;
          master_silent = e.master_silent;
        }

  let verdict t sw = infer (observation t sw)

  let sweep t =
    Ids.Switch_id.Tbl.fold
      (fun sw _ acc ->
        match verdict t sw with Healthy -> acc | v -> (sw, v) :: acc)
      t.entries []
    |> List.sort (fun (a, _) (b, _) -> Ids.Switch_id.compare a b)
end
