open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_graph
open Lazyctrl_grouping
open Lazyctrl_openflow
open Lazyctrl_switch
module Prng = Lazyctrl_util.Prng
module Det = Lazyctrl_util.Det
module Sid = Ids.Switch_id
module Tracer = Lazyctrl_trace.Tracer
module Tev = Lazyctrl_trace.Event

type msg = Proto.t Message.t

type env = {
  engine : Engine.t;
  send_switch : Ids.Switch_id.t -> msg -> unit;
  reboot_switch : Ids.Switch_id.t -> unit;
  request_relay : Ids.Switch_id.t -> via:Ids.Switch_id.t option -> unit;
  rng : Prng.t;
}

type config = {
  group_size_limit : int;
  sync_period : Time.t;
  keepalive_period : Time.t;
  echo_period : Time.t;
  echo_timeout : Time.t;
  daemon_period : Time.t;
  min_update_interval : Time.t;
  workload_growth_trigger : float;
  full_regroup_growth : float;
  max_inc_iterations : int;
  incremental_updates : bool;
  flow_idle_timeout : Time.t;
  intensity_decay : float;
  preload_on_regroup : bool;
  reliable_state : bool;
  retrans : Reliable.config;
}

let default_config =
  {
    group_size_limit = 48;
    sync_period = Time.of_sec 60;
    keepalive_period = Time.of_sec 5;
    echo_period = Time.of_sec 15;
    echo_timeout = Time.of_sec 40;
    daemon_period = Time.of_sec 30;
    min_update_interval = Time.of_min 2;
    workload_growth_trigger = 0.30;
    full_regroup_growth = 10.0;
    max_inc_iterations = 8;
    incremental_updates = true;
    flow_idle_timeout = Time.of_min 5;
    intensity_decay = 0.98;
    preload_on_regroup = true;
    reliable_state = true;
    retrans = Reliable.default_config;
  }

type stats = {
  requests : int;
  packet_ins : int;
  arp_escalations : int;
  state_reports : int;
  ring_alarms : int;
  flow_mods_sent : int;
  packet_outs_sent : int;
  buffer_outs_sent : int;
  arp_relays : int;
  floods : int;
  grouping_updates : int;
  full_regroups : int;
  failovers_handled : int;
  preloaded_rules : int;
}

type t = {
  env : env;
  config : config;
  tracer : Tracer.t;
  n_switches : int;
  clib : Clib.t;
  monitor : Failover.Monitor.t;
  mutable grouping : Grouping.t option;
  configs : Proto.group_config option array; (* per switch *)
  sessions : msg Reliable.t option array; (* per-switch reliable sessions *)
  matrix : (int * int, float) Hashtbl.t;
  mutable requests_total : int;
  mutable requests_at_tick : int;
  mutable ewma_rate : float;
  mutable rate_at_last_update : float;
  mutable last_update_time : Time.t;
  mutable echo_seq : int;
  mutable awaiting_recovery : Sid.Set.t;
  mutable last_verdicts : Failover.verdict Sid.Map.t;
  mutable request_hook : unit -> unit;
  mutable update_hook : unit -> unit;
  mutable failover_hook : Sid.t -> Failover.verdict -> unit;
  mutable clib_delta_hook : Proto.lfib_delta -> unit;
  mutable arp_relay_hook : origin:Sid.t -> Packet.t -> unit;
  mutable timers : Engine.event_id list;
  (* stats *)
  mutable s_packet_ins : int;
  mutable s_arp_escalations : int;
  mutable s_state_reports : int;
  mutable s_ring_alarms : int;
  mutable s_flow_mods : int;
  mutable s_packet_outs : int;
  mutable s_buffer_outs : int;
  mutable s_arp_relays : int;
  mutable s_floods : int;
  mutable s_updates : int;
  mutable s_full_regroups : int;
  mutable s_failovers : int;
  mutable s_preloads : int;
}

let create ?(tracer = Tracer.disabled) env config ~n_switches =
  {
    env;
    config;
    tracer;
    n_switches;
    clib = Clib.create ();
    monitor = Failover.Monitor.create env.engine ~echo_timeout:config.echo_timeout;
    grouping = None;
    configs = Array.make n_switches None;
    sessions = Array.make n_switches None;
    matrix = Hashtbl.create 1024;
    requests_total = 0;
    requests_at_tick = 0;
    ewma_rate = 0.0;
    rate_at_last_update = 0.0;
    last_update_time = Time.zero;
    echo_seq = 0;
    awaiting_recovery = Sid.Set.empty;
    last_verdicts = Sid.Map.empty;
    request_hook = (fun () -> ());
    update_hook = (fun () -> ());
    failover_hook = (fun _ _ -> ());
    clib_delta_hook = (fun _ -> ());
    arp_relay_hook = (fun ~origin:_ _ -> ());
    timers = [];
    s_packet_ins = 0;
    s_arp_escalations = 0;
    s_state_reports = 0;
    s_ring_alarms = 0;
    s_flow_mods = 0;
    s_packet_outs = 0;
    s_buffer_outs = 0;
    s_arp_relays = 0;
    s_floods = 0;
    s_updates = 0;
    s_full_regroups = 0;
    s_failovers = 0;
    s_preloads = 0;
  }

let clib t = t.clib
let monitor t = t.monitor
let grouping t = t.grouping
let group_config_of t sw = t.configs.(Sid.to_int sw)
let set_request_hook t f = t.request_hook <- f
let set_update_hook t f = t.update_hook <- f
let set_failover_hook t f = t.failover_hook <- f
let set_clib_delta_hook t f = t.clib_delta_hook <- f
let set_arp_relay_hook t f = t.arp_relay_hook <- f

let now t = Engine.now t.env.engine

(* Flight-recorder shorthand (no-op when tracing is disabled). *)
let trace t ?flow ?switch kind =
  if Tracer.enabled t.tracer then
    Tracer.emit t.tracer ~now:(now t) ?flow ?switch kind

let trace_pkt t ~from packet kind =
  if Tracer.enabled t.tracer then
    Tracer.emit t.tracer ~now:(now t)
      ?flow:(Tracer.flow_of_packet packet)
      ~switch:(Sid.to_int from) kind

(* [kind] names what is being charged to the controller's workload
   budget; with tracing on, every charge is also a [Ctrl_request] event,
   so trace totals can be cross-checked against the recorder's. *)
let request t kind =
  t.requests_total <- t.requests_total + 1;
  if Tracer.enabled t.tracer then trace t (Tev.Ctrl_request kind);
  t.request_hook ()

let send t sw msg = t.env.send_switch sw msg

let session t sw =
  let i = Sid.to_int sw in
  match t.sessions.(i) with
  | Some s -> s
  | None ->
      let s =
        Reliable.create ~tracer:t.tracer ~rng:t.env.rng
          ~payload_bytes:(Lazyctrl_wire.Wire.message_size Proto.wire_ext)
          t.env.engine t.config.retrans
          ~send_data:(fun ~epoch ~seq payload ->
            send t sw (Message.Extension (Proto.Seq { epoch; seq; payload })))
          ~send_ack:(fun ~epoch ~cum ->
            send t sw (Message.Extension (Proto.Ack { epoch; cum })))
          ~name:(Printf.sprintf "ctrl-sw%d" i) ()
      in
      t.sessions.(i) <- Some s;
      s

(* Group configuration and state sync must survive lossy control links —
   a switch that misses its [Group_config] stays ungrouped until the next
   regroup; flow mods / packet outs remain fire-and-forget like OpenFlow. *)
let send_state t sw msg =
  if t.config.reliable_state then Reliable.send (session t sw) msg
  else send t sw msg

let underlay_ip_of sw = Ipv4.of_switch_id (Sid.to_int sw)

let flow_mod t sw entry =
  t.s_flow_mods <- t.s_flow_mods + 1;
  send t sw (Message.Flow_mod (Message.Add entry))

let packet_out t sw packet actions =
  t.s_packet_outs <- t.s_packet_outs + 1;
  send t sw (Message.Packet_out { packet; actions })

let buffer_out t sw ~buffer_id actions =
  t.s_buffer_outs <- t.s_buffer_outs + 1;
  send t sw (Message.Buffer_out { buffer_id; actions })

(* Reply on the punt's return path: when the switch parked the packet
   under a buffer id, release it by id instead of echoing the packet
   bytes back down the control link (DESIGN.md §13). Replies aimed at
   *other* switches must stay full [Packet_out]s — only the punting
   switch holds the buffer. *)
let reply_to_punt t sw ~buffer_id packet actions =
  if buffer_id <> Message.no_buffer then buffer_out t sw ~buffer_id actions
  else packet_out t sw packet actions

(* --- intensity matrix ------------------------------------------------------ *)

let note_intensity t a b w =
  let a = Sid.to_int a and b = Sid.to_int b in
  if a <> b then begin
    let key = if a < b then (a, b) else (b, a) in
    Hashtbl.replace t.matrix key
      (w +. Option.value (Hashtbl.find_opt t.matrix key) ~default:0.0)
  end

let decay_matrix t =
  (* Det.iter_sorted snapshots the key set first, which also makes the
     remove-while-traversing pattern well-defined. *)
  let f = t.config.intensity_decay in
  let dead = ref [] in
  Det.iter_sorted ~cmp:Det.pair_compare
    (fun key w ->
      let w' = w *. f in
      if w' < 1e-6 then dead := key :: !dead else Hashtbl.replace t.matrix key w')
    t.matrix;
  List.iter (Hashtbl.remove t.matrix) !dead

let current_intensity t =
  (* Sorted traversal: the builder's edge order (and any float rounding
     downstream in the partitioner) stays run-to-run stable. *)
  let b = Wgraph.Builder.create ~n:t.n_switches in
  Det.iter_sorted ~cmp:Det.pair_compare
    (fun (a, c) w -> Wgraph.Builder.add_edge b a c w)
    t.matrix;
  Wgraph.Builder.build b

(* --- group configuration push ---------------------------------------------- *)

let make_group_config t ~gid ~members ~prev =
  let designated, backups =
    match prev with
    | Some (p : Proto.group_config)
      when List.exists (Sid.equal p.designated) members ->
        (* Keep a still-present designated switch to avoid churn. *)
        let backups =
          List.filter
            (fun b -> List.exists (Sid.equal b) members && not (Sid.equal b p.designated))
            p.backups
        in
        (p.designated, backups)
    | _ ->
        let arr = Array.of_list members in
        let d = Prng.choose t.env.rng arr in
        (d, [])
  in
  let backups =
    if List.is_empty backups then
      List.filteri (fun i _ -> i < 2) (List.filter (fun m -> not (Sid.equal m designated)) members)
    else backups
  in
  {
    Proto.group = gid;
    members;
    designated;
    backups;
    sync_period = t.config.sync_period;
    keepalive_period = t.config.keepalive_period;
  }

(* Appendix B "preload for seamless grouping update": when a switch's
   group loses a peer, packets to that peer's hosts would punt to the
   controller until new state settles; temporary exact rules bridge the
   window and expire on their own once the grouping is stable. *)
let preload_departures t ~member ~old_members ~new_members =
  (* "Related switches" only: a departing peer is worth bridging when the
     member actually exchanges traffic with it per the intensity matrix;
     preloading every row would swamp the control links for nothing. *)
  let exchanges_traffic a b =
    let a = Sid.to_int a and b = Sid.to_int b in
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.matrix key with
    | Some w -> w > 0.01
    | None -> false
  in
  List.iter
    (fun departing ->
      if
        (not (Sid.equal departing member))
        && (not (List.exists (Sid.equal departing) new_members))
        && exchanges_traffic member departing
      then
        List.iter
          (fun (key : Proto.host_key) ->
            t.s_preloads <- t.s_preloads + 1;
            flow_mod t member
              {
                Flow_table.priority = 5;
                ofmatch = { Ofmatch.any with dst_mac = Some key.mac };
                actions = [ Action.Encap (underlay_ip_of departing) ];
                idle_timeout = None;
                hard_timeout = Some (Time.scale t.config.sync_period 2.0);
                cookie = 4;
              })
          (Clib.row t.clib departing))
    old_members

let push_group t (cfg : Proto.group_config) =
  List.iter
    (fun m ->
      (if t.config.preload_on_regroup then
         match t.configs.(Sid.to_int m) with
         | Some old ->
             preload_departures t ~member:m ~old_members:old.Proto.members
               ~new_members:cfg.members
         | None -> ());
      t.configs.(Sid.to_int m) <- Some cfg;
      send_state t m (Message.Extension (Proto.Group_config cfg)))
    cfg.members;
  (* Seed the designated switch with the group's known state so members
     rebuild their G-FIBs (§III-D3 case ii). *)
  (* Rows the C-LIB knows nothing about are omitted: an empty
     "authoritative" row would race with (and clobber) the member's own
     adoption-time full advert. *)
  let lfibs =
    List.filter_map
      (fun m ->
        match Clib.row t.clib m with [] -> None | row -> Some (m, row))
      cfg.members
  in
  if not (List.is_empty lfibs) then
    send_state t cfg.designated (Message.Extension (Proto.Group_sync { lfibs }))

(* Push configs for groups whose membership changed relative to the
   switches' current configs. *)
let apply_grouping t (g : Grouping.t) =
  t.grouping <- Some g;
  for gid = 0 to Grouping.n_groups g - 1 do
    let gid_t = Ids.Group_id.of_int gid in
    let members = Grouping.members g gid_t in
    let prev = t.configs.(Sid.to_int (List.hd members)) in
    let unchanged =
      match prev with
      | Some p ->
          List.length p.members = List.length members
          && List.for_all2 Sid.equal
               (List.sort Sid.compare p.members)
               (List.sort Sid.compare members)
      | None -> false
    in
    if not unchanged then
      push_group t (make_group_config t ~gid:gid_t ~members ~prev)
  done

(* --- grouping daemon -------------------------------------------------------- *)

let run_inc_updates t =
  match t.grouping with
  | None -> ()
  | Some g ->
      let intensity = current_intensity t in
      let rec loop g i improved =
        if i >= t.config.max_inc_iterations then (g, improved)
        else
          match
            Sgi.inc_update ~rng:t.env.rng ~limit:t.config.group_size_limit
              ~intensity g
          with
          | None -> (g, improved)
          | Some g' -> loop g' (i + 1) true
      in
      let old_cut = Grouping.inter_group_intensity intensity g in
      let g', improved = loop g 0 false in
      (* Only pay the reconfiguration cost for a significant gain —
         at least 2% of the total observed traffic must move back inside
         groups. This keeps the Fig. 8 update rate low on stable traffic
         while reacting to genuine drift. *)
      let total = Float.max (Wgraph.total_edge_weight intensity) 1e-9 in
      let new_cut = Grouping.inter_group_intensity intensity g' in
      let significant = old_cut -. new_cut >= 0.02 *. total in
      let improved = improved && significant in
      if improved then begin
        apply_grouping t g';
        if Tracer.enabled t.tracer then
          trace t
            (Tev.Regroup { full = false; groups = Grouping.n_groups g' });
        t.s_updates <- t.s_updates + 1;
        t.update_hook ();
        t.last_update_time <- now t;
        t.rate_at_last_update <- t.ewma_rate
      end

let run_full_regroup t =
  let intensity = current_intensity t in
  let g = Sgi.ini_group ~rng:t.env.rng ~limit:t.config.group_size_limit intensity in
  apply_grouping t g;
  if Tracer.enabled t.tracer then
    trace t (Tev.Regroup { full = true; groups = Grouping.n_groups g });
  t.s_full_regroups <- t.s_full_regroups + 1;
  t.s_updates <- t.s_updates + 1;
  t.update_hook ();
  t.last_update_time <- now t;
  t.rate_at_last_update <- t.ewma_rate

(* --- failover --------------------------------------------------------------- *)

let ring_neighbors_of t sw =
  match t.configs.(Sid.to_int sw) with
  | None -> None
  | Some cfg -> Proto.Ring.neighbors ~members:cfg.members sw

let reselect_designated t (cfg : Proto.group_config) ~exclude =
  let eligible =
    List.filter
      (fun m -> not (List.exists (Sid.equal m) exclude))
      (cfg.backups @ cfg.members)
  in
  match eligible with
  | [] -> ()
  | d :: _ ->
      let cfg' =
        {
          cfg with
          Proto.designated = d;
          backups =
            List.filteri (fun i _ -> i < 2)
              (List.filter
                 (fun m ->
                   (not (Sid.equal m d))
                   && not (List.exists (Sid.equal m) exclude))
                 cfg.members);
        }
      in
      push_group t cfg'

let verdict_trace_label (v : Failover.verdict) =
  match v with
  | Failover.Healthy -> "healthy"
  | Failover.Ambiguous -> "ambiguous"
  | Failover.Control_link_failure -> "control_link_failure"
  | Failover.Peer_link_up_failure -> "peer_link_up_failure"
  | Failover.Peer_link_down_failure -> "peer_link_down_failure"
  | Failover.Switch_failure -> "switch_failure"
  | Failover.Controller_failure -> "controller_failure"

let handle_verdict t sw verdict =
  let open Failover in
  (match verdict with
  | Healthy -> ()
  | v ->
      if Tracer.enabled t.tracer then
        trace t ~switch:(Sid.to_int sw)
          (Tev.Failover (verdict_trace_label v));
      t.failover_hook sw v);
  match verdict with
  | Healthy | Ambiguous -> ()
  | Control_link_failure -> (
      t.s_failovers <- t.s_failovers + 1;
      match ring_neighbors_of t sw with
      | Some (up, _) -> t.env.request_relay sw ~via:(Some up)
      | None -> ())
  | Peer_link_up_failure | Peer_link_down_failure -> (
      t.s_failovers <- t.s_failovers + 1;
      (* Only matters when an end of the broken peer link is the
         designated switch (§III-E2). *)
      match t.configs.(Sid.to_int sw) with
      | None -> ()
      | Some cfg ->
          let other =
            match (ring_neighbors_of t sw, verdict) with
            | Some (up, _), Peer_link_down_failure -> Some up
            | Some (_, down), Peer_link_up_failure -> Some down
            | _ -> None
          in
          let ends = sw :: Option.to_list other in
          if List.exists (Sid.equal cfg.designated) ends then
            reselect_designated t cfg ~exclude:ends;
          Failover.Monitor.ring_recovered t.monitor sw)
  | Controller_failure ->
      (* The switch is alive on our backup spoke but its master
         controller died: the re-home handshake is the cluster layer's
         job (driven through the failover hook above); nothing to
         reboot or relay here. *)
      t.s_failovers <- t.s_failovers + 1
  | Switch_failure ->
      t.s_failovers <- t.s_failovers + 1;
      t.awaiting_recovery <- Sid.Set.add sw t.awaiting_recovery;
      (match t.configs.(Sid.to_int sw) with
      | Some cfg when Sid.equal cfg.designated sw ->
          reselect_designated t cfg ~exclude:[ sw ]
      | _ -> ());
      t.env.reboot_switch sw;
      Failover.Monitor.ring_recovered t.monitor sw

let evaluate_failures t =
  List.iter
    (fun (sw, v) ->
      let prev =
        Option.value (Sid.Map.find_opt sw t.last_verdicts) ~default:Failover.Healthy
      in
      if not (Failover.verdict_equal v prev) then begin
        t.last_verdicts <- Sid.Map.add sw v t.last_verdicts;
        handle_verdict t sw v
      end)
    (Failover.Monitor.sweep t.monitor);
  (* Clear verdict memory for switches that recovered; a control-link
     failover's relay detour is withdrawn at the same moment, so the
     switch returns to its own (repaired) control link. *)
  t.last_verdicts <-
    Sid.Map.filter
      (fun sw prev ->
        let healthy_now =
          Failover.verdict_equal
            (Failover.Monitor.verdict t.monitor sw)
            Failover.Healthy
        in
        if
          healthy_now
          && Failover.verdict_equal prev Failover.Control_link_failure
        then t.env.request_relay sw ~via:None;
        not healthy_now)
      t.last_verdicts

let switch_recovered t sw =
  t.awaiting_recovery <- Sid.Set.remove sw t.awaiting_recovery;
  Failover.Monitor.ring_recovered t.monitor sw;
  (* The rebooted switch lost its receive window; start a fresh epoch so
     our retransmissions are not mistaken for a resumable old stream. *)
  (match t.sessions.(Sid.to_int sw) with
  | Some s -> Reliable.reset s
  | None -> ());
  match t.configs.(Sid.to_int sw) with
  | None -> ()
  | Some cfg ->
      (* §III-E3 (iii): re-deliver the configuration and trigger a state
         synchronization in the group. *)
      send_state t sw (Message.Extension (Proto.Group_config cfg));
      let lfibs =
        List.filter_map
          (fun m ->
            match Clib.row t.clib m with [] -> None | row -> Some (m, row))
          cfg.members
      in
      if not (List.is_empty lfibs) then
        send_state t cfg.designated (Message.Extension (Proto.Group_sync { lfibs }))

(* --- ARP relay and packet handling ------------------------------------------ *)

let target_ip_of_arp (eth : Packet.eth) =
  match eth.payload with
  | Packet.Arp { op = Packet.Request; target_ip; _ } -> Some target_ip
  | _ -> None

let group_of_switch t sw =
  Option.map (fun (c : Proto.group_config) -> c.group) (t.configs.(Sid.to_int sw))

let designated_of_group t gid =
  let found = ref None in
  Array.iter
    (fun cfg ->
      match cfg with
      | Some (c : Proto.group_config)
        when Ids.Group_id.equal c.group gid && Option.is_none !found ->
          found := Some c.designated
      | _ -> ())
    t.configs;
  !found

(* Unknown target: relay into every group *we* configure that hosts the
   tenant. Shared between local escalations and escalations relayed by a
   cluster peer — a remote origin simply has no group here, so no group
   is skipped. *)
let relay_unknown_target t ~origin packet =
  let eth = Packet.eth_of packet in
  let origin_group = group_of_switch t origin in
  match Clib.tenant_of_mac t.clib eth.Packet.src with
  | None -> ()
  | Some tenant ->
      let groups =
        Clib.switches_of_tenant t.clib tenant
        |> List.filter_map (group_of_switch t)
        |> List.sort_uniq Ids.Group_id.compare
      in
      List.iter
        (fun gid ->
          if not (Option.equal Ids.Group_id.equal (Some gid) origin_group) then
            match designated_of_group t gid with
            | Some d ->
                t.s_arp_relays <- t.s_arp_relays + 1;
                send t d (Message.Extension (Proto.Arp_broadcast { packet }))
            | None -> ())
        groups

let relay_arp t ~origin packet =
  trace t ~switch:(Sid.to_int origin) Tev.Ctrl_arp_relay;
  let eth = Packet.eth_of packet in
  match target_ip_of_arp eth with
  | None -> ()
  | Some target_ip -> (
      match Clib.locate_ip t.clib target_ip with
      | Some (sw, _) ->
          (* The C-LIB pinpoints the owner: hand the request straight to
             its switch (a strict refinement of the paper's
             all-tenant-groups relay, enabled by complete visibility).
             Note the escalation may come from the owner's *own* group —
             e.g. a member whose G-FIB state is still settling after a
             regroup — so this must work regardless of group equality. *)
          t.s_arp_relays <- t.s_arp_relays + 1;
          packet_out t sw packet [ Action.Flood_local ]
      | None ->
          relay_unknown_target t ~origin packet;
          (* Groups configured by cluster peers can host the tenant too;
             the hook hands the request to the coordination layer. *)
          t.arp_relay_hook ~origin packet)

let handle_remote_arp t ~origin packet =
  (* An ARP a cluster peer could not pin down: broadcast into our groups
     only — re-firing the hook here would echo it around the mesh. *)
  relay_unknown_target t ~origin packet

let install_forwarding t ~from ~buffer_id ~target packet =
  let eth = Packet.eth_of packet in
  let entry =
    {
      Flow_table.priority = 10;
      ofmatch = Ofmatch.exact_pair ~src:eth.Packet.src ~dst:eth.Packet.dst;
      actions = [ Action.Encap (underlay_ip_of target) ];
      idle_timeout = Some t.config.flow_idle_timeout;
      hard_timeout = None;
      cookie = 1;
    }
  in
  if Tracer.enabled t.tracer then
    trace_pkt t ~from packet (Tev.Ctrl_install (Sid.to_int target));
  flow_mod t from entry;
  reply_to_punt t from ~buffer_id packet [ Action.Encap (underlay_ip_of target) ];
  note_intensity t from target 1.0

let flood_tenant t ~from packet =
  let eth = Packet.eth_of packet in
  t.s_floods <- t.s_floods + 1;
  trace_pkt t ~from packet Tev.Ctrl_flood;
  let targets =
    match Clib.tenant_of_mac t.clib eth.Packet.src with
    | Some tenant -> Clib.switches_of_tenant t.clib tenant
    | None -> []
  in
  List.iter
    (fun sw ->
      if not (Sid.equal sw from) then
        packet_out t sw packet [ Action.Flood_local ])
    targets

let handle_packet_in t ~from ~buffer_id packet =
  t.s_packet_ins <- t.s_packet_ins + 1;
  trace_pkt t ~from packet Tev.Ctrl_packet_in;
  let eth = Packet.eth_of packet in
  match eth.Packet.payload with
  | Packet.Arp { op = Packet.Request; _ } ->
      (* ARP resolution answers come from elsewhere (owner switch or a
         group broadcast); the parked copy at the punting switch ages out
         on its own. *)
      relay_arp t ~origin:from packet
  | Packet.Arp { op = Packet.Reply; _ } | Packet.Ipv4 _ -> (
      match Clib.locate_mac t.clib eth.Packet.dst with
      | Some target when not (Sid.equal target from) ->
          install_forwarding t ~from ~buffer_id ~target packet
      | Some _ ->
          (* The owner is local to the punting switch but its L-FIB missed
             it (e.g. just after recovery): hand the frame back. *)
          reply_to_punt t from ~buffer_id packet [ Action.Flood_local ]
      | None ->
          (* The flood copies go to *other* switches, which do not hold
             the buffer; the punting switch's parked copy expires. *)
          flood_tenant t ~from packet)

(* --- message entry point ------------------------------------------------------ *)

let rec handle_message t ~from msg =
  (* Any sign of life from a switch revives a reliable session that gave
     up retransmitting (e.g. after a long burst or link outage). *)
  (match t.sessions.(Sid.to_int from) with
  | Some s when Reliable.has_given_up s -> Reliable.kick s
  | _ -> ());
  match msg with
  | Message.Packet_in { packet; buffer_id; _ } ->
      request t "packet_in";
      handle_packet_in t ~from ~buffer_id packet
  | Message.Echo_reply _ ->
      Failover.Monitor.echo_received t.monitor from;
      if Sid.Set.mem from t.awaiting_recovery then switch_recovered t from
  | Message.Hello ->
      (* Power-on handshake: the switch announces it is (back) up.  Re-push
         its configuration; harmless if it never had one. *)
      switch_recovered t from
  | Message.Echo_request _ | Message.Packet_out _ | Message.Buffer_out _
  | Message.Flow_mod _ ->
      ()
  | Message.Extension ext -> (
      match ext with
      | Proto.State_report { deltas; intensity; _ } ->
          request t "state_report";
          t.s_state_reports <- t.s_state_reports + 1;
          List.iter
            (fun d ->
              Clib.apply_delta t.clib d;
              t.clib_delta_hook d)
            deltas;
          List.iter
            (fun (a, b, count) -> note_intensity t a b (Float.of_int count))
            intensity
      | Proto.Arp_escalate { origin; packet } ->
          request t "arp_escalate";
          t.s_arp_escalations <- t.s_arp_escalations + 1;
          relay_arp t ~origin packet
      | Proto.Ring_alarm { missing; direction; _ } ->
          request t "ring_alarm";
          t.s_ring_alarms <- t.s_ring_alarms + 1;
          (* Evidence only; correlated losses are judged at the next daemon
             tick so a failing switch's two ring alarms are not each
             misread as independent peer-link failures. *)
          Failover.Monitor.ring_alarm t.monitor ~missing ~direction
      | Proto.False_positive { at; dst } -> (
          request t "false_positive";
          (* §III-D4: pin the true location so the same destination stops
             being misdelivered. *)
          match Clib.locate_mac t.clib dst with
          | Some target when not (Sid.equal target at) ->
              flow_mod t at
                {
                  Flow_table.priority = 20;
                  ofmatch = { Ofmatch.any with dst_mac = Some dst };
                  actions = [ Action.Encap (underlay_ip_of target) ];
                  idle_timeout = Some t.config.flow_idle_timeout;
                  hard_timeout = None;
                  cookie = 2;
                }
          | _ -> ())
      | Proto.Relay { origin; boxed } -> handle_message t ~from:origin boxed
      | Proto.Lfib_advert d ->
          request t "lfib_advert";
          Clib.apply_delta t.clib d;
          t.clib_delta_hook d
      | Proto.Seq { epoch; seq; payload } ->
          List.iter
            (fun m -> handle_message t ~from m)
            (Reliable.handle_data (session t from) ~epoch ~seq payload)
      | Proto.Ack { epoch; cum } ->
          Reliable.handle_ack (session t from) ~epoch ~cum
      | Proto.Group_config _ | Proto.Group_sync _ | Proto.Member_report _
      | Proto.Group_arp _ | Proto.Arp_broadcast _ | Proto.Keepalive _
      | Proto.Rehome _ ->
          ())

(* --- detour routing (§III-E2) ------------------------------------------------- *)

let notify_path_failure t ~src ~dst =
  match t.grouping with
  | None -> ()
  | Some g ->
      let via =
        Grouping.members g (Grouping.group_of g dst)
        |> List.find_opt (fun m -> (not (Sid.equal m dst)) && not (Sid.equal m src))
      in
      (match via with
      | None -> ()
      | Some via ->
          t.s_failovers <- t.s_failovers + 1;
          (* Two-segment detour: src tunnels to the healthy [via] member,
             whose own rule completes the last hop to [dst]. *)
          List.iter
            (fun (key : Proto.host_key) ->
              let rule at target =
                flow_mod t at
                  {
                    Flow_table.priority = 30;
                    ofmatch = { Ofmatch.any with dst_mac = Some key.mac };
                    actions = [ Action.Encap (underlay_ip_of target) ];
                    idle_timeout = Some t.config.flow_idle_timeout;
                    hard_timeout = None;
                    cookie = 3;
                  }
              in
              rule src via;
              rule via dst)
            (Clib.row t.clib dst))

(* --- timers and bootstrap ------------------------------------------------------ *)

let echo_tick t =
  t.echo_seq <- t.echo_seq + 1;
  (* Echo the monitored set, not 0..n-1: a sharded instance only owns
     (and only registered) a subset of the fabric. Standalone, bootstrap
     registers every switch, so the behaviour is unchanged. *)
  List.iter
    (fun sw ->
      Failover.Monitor.echo_sent t.monitor sw;
      send t sw (Message.Echo_request t.echo_seq))
    (Failover.Monitor.registered t.monitor)

let daemon_tick t =
  let period_s = Time.to_float_sec t.config.daemon_period in
  let fresh = Float.of_int (t.requests_total - t.requests_at_tick) /. period_s in
  t.requests_at_tick <- t.requests_total;
  (* Light smoothing only: the paper's trigger reacts to the measured
     workload, noise included — that noise (plus the 2-minute floor) is
     what sets the Fig. 8 update cadence. *)
  t.ewma_rate <- (0.3 *. t.ewma_rate) +. (0.7 *. fresh);
  decay_matrix t;
  evaluate_failures t;
  if t.config.incremental_updates && Option.is_some t.grouping then begin
    let base = Float.max t.rate_at_last_update 0.001 in
    let growth = (t.ewma_rate -. base) /. base in
    let interval_ok =
      Time.(Time.diff (now t) t.last_update_time >= t.config.min_update_interval)
    in
    (* Fig. 3 / §IV-B triggers: (i) >=30% workload growth since the last
       update, or (ii) two minutes since the last update — both floored at
       the 2-minute minimum interval. The applied-update rate then
       self-regulates: an attempt that finds no cut improvement changes
       nothing and is not counted. *)
    if interval_ok then begin
      if growth >= t.config.full_regroup_growth then run_full_regroup t
      else run_inc_updates t;
      (* Rate-limit attempts even when nothing improved. *)
      if Time.(Time.diff (now t) t.last_update_time >= t.config.min_update_interval)
      then begin
        t.last_update_time <- now t;
        t.rate_at_last_update <- t.ewma_rate
      end
    end
  end

let force_regroup t = run_full_regroup t

let start_timers t =
  t.timers <-
    [
      Engine.every t.env.engine ~period:t.config.echo_period (fun () ->
          echo_tick t);
      Engine.every t.env.engine ~period:t.config.daemon_period (fun () ->
          daemon_tick t);
    ]

let shutdown t =
  List.iter (Engine.cancel t.env.engine) t.timers;
  t.timers <- []

let bootstrap t ~intensity =
  (* Seed the matrix with the history statistics. *)
  Wgraph.iter_edges intensity (fun a b w ->
      note_intensity t (Sid.of_int a) (Sid.of_int b) w);
  let g = Sgi.ini_group ~rng:t.env.rng ~limit:t.config.group_size_limit intensity in
  apply_grouping t g;
  for i = 0 to t.n_switches - 1 do
    Failover.Monitor.register t.monitor (Sid.of_int i)
  done;
  t.last_update_time <- now t;
  start_timers t

(* --- controller-cluster sharding ---------------------------------------------- *)

let adopt_groups t ~groups =
  List.iter
    (fun (gid, members) ->
      List.iter (Failover.Monitor.register t.monitor) members;
      push_group t (make_group_config t ~gid ~members ~prev:None))
    groups

let bootstrap_shard t ~groups =
  (* A cluster member starts with an assigned slice of the LCGs instead
     of partitioning the fabric itself; [t.grouping] stays [None], which
     also keeps the grouping daemon from regrouping switches it does not
     own. Echo/daemon timers cover exactly the registered slice. *)
  adopt_groups t ~groups;
  t.last_update_time <- now t;
  start_timers t

let release_group t gid =
  let members = ref [] in
  Array.iteri
    (fun i cfg ->
      match cfg with
      | Some (c : Proto.group_config) when Ids.Group_id.equal c.group gid ->
          let sw = Sid.of_int i in
          members := sw :: !members;
          t.configs.(i) <- None;
          Failover.Monitor.unregister t.monitor sw;
          t.awaiting_recovery <- Sid.Set.remove sw t.awaiting_recovery;
          t.last_verdicts <- Sid.Map.remove sw t.last_verdicts;
          (* The new owner starts its own session against the switch's
             fresh receive window; ours must not keep retransmitting into
             it. *)
          (match t.sessions.(i) with
          | Some s -> Reliable.reset s
          | None -> ())
      | _ -> ())
    t.configs;
  List.rev !members

let apply_remote_delta t d =
  (* C-LIB gossip from a cluster peer: apply without re-firing the delta
     hook, which would echo the row around the mesh forever. *)
  Clib.apply_delta t.clib d

let reliable_stats t =
  Array.fold_left
    (fun acc s ->
      match s with
      | None -> acc
      | Some s -> Reliable.stats_add acc (Reliable.stats s))
    Reliable.stats_zero t.sessions

let stats t =
  {
    requests = t.requests_total;
    packet_ins = t.s_packet_ins;
    arp_escalations = t.s_arp_escalations;
    state_reports = t.s_state_reports;
    ring_alarms = t.s_ring_alarms;
    flow_mods_sent = t.s_flow_mods;
    packet_outs_sent = t.s_packet_outs;
    buffer_outs_sent = t.s_buffer_outs;
    arp_relays = t.s_arp_relays;
    floods = t.s_floods;
    grouping_updates = t.s_updates;
    full_regroups = t.s_full_regroups;
    failovers_handled = t.s_failovers;
    preloaded_rules = t.s_preloads;
  }
