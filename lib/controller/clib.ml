open Lazyctrl_net
open Lazyctrl_switch
module Sid = Ids.Switch_id
module Tid = Ids.Tenant_id

type entry = { key : Proto.host_key; at : Sid.t }

type t = {
  by_mac : (int, entry) Hashtbl.t;
  by_ip : (int, entry) Hashtbl.t;
  by_switch : (int, Proto.host_key) Hashtbl.t Sid.Tbl.t;
  tenant_presence : (int, int) Hashtbl.t Tid.Tbl.t; (* tenant -> switch -> host count *)
}

let create () =
  {
    by_mac = Hashtbl.create 1024;
    by_ip = Hashtbl.create 1024;
    by_switch = Sid.Tbl.create 64;
    tenant_presence = Tid.Tbl.create 32;
  }

let switch_table t sw =
  match Sid.Tbl.find_opt t.by_switch sw with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 32 in
      Sid.Tbl.replace t.by_switch sw tbl;
      tbl

let tenant_table t tenant =
  match Tid.Tbl.find_opt t.tenant_presence tenant with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Tid.Tbl.replace t.tenant_presence tenant tbl;
      tbl

let bump_tenant t tenant sw delta =
  let tbl = tenant_table t tenant in
  let sw = Sid.to_int sw in
  let v = delta + Option.value (Hashtbl.find_opt tbl sw) ~default:0 in
  if v <= 0 then Hashtbl.remove tbl sw else Hashtbl.replace tbl sw v

let add t sw (key : Proto.host_key) =
  let mac = Mac.to_int key.mac in
  (* A MAC seen elsewhere moved (VM migration): retract the old entry. *)
  (match Hashtbl.find_opt t.by_mac mac with
  | Some old when not (Sid.equal old.at sw) ->
      Hashtbl.remove (switch_table t old.at) mac;
      bump_tenant t old.key.tenant old.at (-1)
  | _ -> ());
  let fresh = not (Hashtbl.mem (switch_table t sw) mac) in
  Hashtbl.replace t.by_mac mac { key; at = sw };
  Hashtbl.replace t.by_ip (Ipv4.to_int key.ip) { key; at = sw };
  Hashtbl.replace (switch_table t sw) mac key;
  if fresh then bump_tenant t key.tenant sw 1

let remove t sw (key : Proto.host_key) =
  let mac = Mac.to_int key.mac in
  match Hashtbl.find_opt t.by_mac mac with
  | Some entry when Sid.equal entry.at sw ->
      Hashtbl.remove t.by_mac mac;
      Hashtbl.remove t.by_ip (Ipv4.to_int key.ip);
      Hashtbl.remove (switch_table t sw) mac;
      bump_tenant t key.tenant sw (-1)
  | _ -> () (* stale removal, superseded by a newer location *)

let set_row t sw keys =
  (* Removal order is observable through tenant-presence bookkeeping, so
     take the old row in sorted (mac) order. *)
  let tbl = switch_table t sw in
  let old =
    List.map snd (Lazyctrl_util.Det.bindings_sorted ~cmp:Int.compare tbl)
  in
  List.iter (remove t sw) old;
  List.iter (add t sw) keys

let apply_delta t (d : Proto.lfib_delta) =
  if d.full then set_row t d.origin d.added
  else begin
    List.iter (remove t d.origin) d.removed;
    List.iter (add t d.origin) d.added
  end

let row t sw =
  match Sid.Tbl.find_opt t.by_switch sw with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun _ k acc -> k :: acc) tbl []
      |> List.sort (fun (a : Proto.host_key) b -> Mac.compare a.mac b.mac)

let rows t =
  Sid.Tbl.fold (fun sw _ acc -> (sw, row t sw) :: acc) t.by_switch []
  |> List.sort (fun (a, _) (b, _) -> Sid.compare a b)

let locate_mac t mac =
  Option.map (fun e -> e.at) (Hashtbl.find_opt t.by_mac (Mac.to_int mac))

let locate_ip t ip =
  Option.map (fun e -> (e.at, e.key)) (Hashtbl.find_opt t.by_ip (Ipv4.to_int ip))

let tenant_of_mac t mac =
  Option.map
    (fun e -> e.key.Proto.tenant)
    (Hashtbl.find_opt t.by_mac (Mac.to_int mac))

let switches_of_tenant t tenant =
  match Tid.Tbl.find_opt t.tenant_presence tenant with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun sw _ acc -> Sid.of_int sw :: acc) tbl []
      |> List.sort Sid.compare

let n_entries t = Hashtbl.length t.by_mac

let n_switches t = Sid.Tbl.length t.by_switch
