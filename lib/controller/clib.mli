(** Central Location Information Base (§III-B2, §IV-B).

    The controller's copy of every switch's L-FIB, assembled from the
    designated switches' state reports. Indexed by MAC, IP, tenant and
    switch so the controller can set up inter-group flows, relay ARP
    within a tenant's scope, and re-seed a group's state after
    regrouping or switch recovery. *)

open Lazyctrl_net
open Lazyctrl_switch

type t

val create : unit -> t

val apply_delta : t -> Proto.lfib_delta -> unit
(** Incremental or full-row update from a state report. *)

val set_row : t -> Ids.Switch_id.t -> Proto.host_key list -> unit

val row : t -> Ids.Switch_id.t -> Proto.host_key list
(** The known L-FIB of a switch (empty when unknown). *)

val rows : t -> (Ids.Switch_id.t * Proto.host_key list) list

val locate_mac : t -> Mac.t -> Ids.Switch_id.t option
val locate_ip : t -> Ipv4.t -> (Ids.Switch_id.t * Proto.host_key) option

val tenant_of_mac : t -> Mac.t -> Ids.Tenant_id.t option

val switches_of_tenant : t -> Ids.Tenant_id.t -> Ids.Switch_id.t list
(** Switches currently hosting at least one VM of the tenant — the scope
    of cross-group ARP relays. *)

val n_entries : t -> int
val n_switches : t -> int
