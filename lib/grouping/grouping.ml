open Lazyctrl_net
open Lazyctrl_graph

type t = {
  assignment : int array; (* switch -> dense group id *)
  groups : int list array; (* group -> members, ascending *)
}

let of_assignment raw =
  let n = Array.length raw in
  if n = 0 then invalid_arg "Grouping.of_assignment: empty";
  let dense = Hashtbl.create 16 in
  let next = ref 0 in
  let assignment =
    Array.map
      (fun label ->
        if label < 0 then invalid_arg "Grouping.of_assignment: negative label";
        match Hashtbl.find_opt dense label with
        | Some d -> d
        | None ->
            let d = !next in
            incr next;
            Hashtbl.add dense label d;
            d)
      raw
  in
  let groups = Array.make !next [] in
  for sw = n - 1 downto 0 do
    groups.(assignment.(sw)) <- sw :: groups.(assignment.(sw))
  done;
  { assignment; groups }

let singleton_groups ~n_switches = of_assignment (Array.init n_switches (fun i -> i))
let one_group ~n_switches = of_assignment (Array.make n_switches 0)

let n_switches t = Array.length t.assignment
let n_groups t = Array.length t.groups

let group_of t sw = Ids.Group_id.of_int t.assignment.(Ids.Switch_id.to_int sw)

let members t g =
  List.map Ids.Switch_id.of_int t.groups.(Ids.Group_id.to_int g)

let sizes t = Array.map List.length t.groups
let max_group_size t = Array.fold_left (fun acc m -> max acc (List.length m)) 0 t.groups
let assignment t = Array.copy t.assignment

let same_group t a b =
  t.assignment.(Ids.Switch_id.to_int a) = t.assignment.(Ids.Switch_id.to_int b)

let check_graph g t =
  if Wgraph.n_vertices g <> n_switches t then
    invalid_arg "Grouping: intensity graph size mismatch"

let inter_group_intensity g t =
  check_graph g t;
  Partition.edge_cut g t.assignment

let normalized_inter g t =
  check_graph g t;
  Partition.normalized_cut g t.assignment

let group_pair_intensity g t =
  check_graph g t;
  let acc = Hashtbl.create 64 in
  Wgraph.iter_edges g (fun u v w ->
      let gu = t.assignment.(u) and gv = t.assignment.(v) in
      if gu <> gv then begin
        let key = if gu < gv then (gu, gv) else (gv, gu) in
        Hashtbl.replace acc key (w +. Option.value (Hashtbl.find_opt acc key) ~default:0.0)
      end);
  Hashtbl.fold (fun (a, b) w l -> (a, b, w) :: l) acc []
  |> List.sort (fun (a1, b1, w1) (a2, b2, w2) ->
         (* Weight descending, then group pair: equal weights must not
            leave the order to hash-bucket layout. *)
         match Float.compare w2 w1 with
         | 0 -> (
             match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
         | c -> c)

let equal a b =
  Int.equal (Array.length a.assignment) (Array.length b.assignment)
  && Array.for_all2 Int.equal a.assignment b.assignment

let pp fmt t =
  Format.fprintf fmt "grouping(%d switches, %d groups, max=%d)" (n_switches t)
    (n_groups t) (max_group_size t)
