type player = { ideal : int; discount : float }

let check p name =
  if p.discount <= 0.0 || p.discount >= 1.0 then
    invalid_arg (name ^ ": discount outside (0,1)");
  if p.ideal < 1 then invalid_arg (name ^ ": ideal < 1")

let proposer_share ~proposer ~responder =
  (1.0 -. responder.discount) /. (1.0 -. (proposer.discount *. responder.discount))

let equilibrium_limit ~controller ~switches =
  check controller "Negotiation: controller";
  check switches "Negotiation: switches";
  let share = proposer_share ~proposer:controller ~responder:switches in
  let lo = Float.of_int switches.ideal and hi = Float.of_int controller.ideal in
  (* The controller's share pulls the agreed limit toward its own ideal,
     whichever side of the interval that is. *)
  int_of_float (Float.round (lo +. (share *. (hi -. lo))))

type outcome = { limit : int; rounds : int; proposer_share : float }

let simulate ?(max_rounds = 64) ?(epsilon = 1e-9) ~controller ~switches () =
  check controller "Negotiation: controller";
  check switches "Negotiation: switches";
  if max_rounds < 1 then invalid_arg "Negotiation.simulate: max_rounds < 1";
  (* Backward induction on a normalized pie of size 1 for the proposer of
     round 0 (the controller). [value r] is the share of the round-[r]
     proposer in the subgame starting at round [r]; in the final round the
     proposer takes everything. *)
  let rec value r =
    if r = max_rounds - 1 then 1.0
    else
      let responder_discount =
        if r mod 2 = 0 then switches.discount else controller.discount
      in
      1.0 -. (responder_discount *. value (r + 1))
  in
  let share0 = value 0 in
  (* Play forward: round-0 proposer offers the responder exactly their
     continuation value; a rational responder accepts within epsilon. *)
  let responder_cont = switches.discount *. value 1 in
  let offer = 1.0 -. share0 in
  let rounds = if offer +. epsilon >= responder_cont then 1 else max_rounds in
  let lo = Float.of_int switches.ideal and hi = Float.of_int controller.ideal in
  {
    limit = int_of_float (Float.round (lo +. (share0 *. (hi -. lo))));
    rounds;
    proposer_share = share0;
  }

let capacity_preference ~tcam_entries ~lfib_entry_bytes ~gfib_bytes_per_peer =
  if tcam_entries <= 0 || lfib_entry_bytes <= 0 || gfib_bytes_per_peer <= 0 then
    invalid_arg "Negotiation.capacity_preference: non-positive budget";
  (* Budget in bytes; a group of size s costs (s-1) Bloom filters plus the
     local table. Largest s with (s-1)*gfib + lfib-ish <= budget. *)
  let budget = tcam_entries * lfib_entry_bytes in
  max 1 (1 + ((budget - lfib_entry_bytes) / gfib_bytes_per_peer))
