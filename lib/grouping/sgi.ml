open Lazyctrl_graph
module Prng = Lazyctrl_util.Prng

let estimate_k ~n_switches ~limit = max 1 ((n_switches + limit - 1) / limit)

let ini_group ~rng ~limit ?k g =
  if limit < 1 then invalid_arg "Sgi.ini_group: limit < 1";
  let n = Wgraph.n_vertices g in
  let k = Option.value k ~default:(estimate_k ~n_switches:n ~limit) in
  if k * limit < n then invalid_arg "Sgi.ini_group: k too small for the size limit";
  let a = Partition.multilevel_kway ~rng ~max_part_weight:limit ~k g in
  Grouping.of_assignment a

let find_candidate_pair ?previous g grouping =
  let current = Grouping.group_pair_intensity g grouping in
  match previous with
  | None -> (
      match current with [] -> None | (a, b, _) :: _ -> Some (a, b))
  | Some prev_g ->
      let prev =
        Grouping.group_pair_intensity prev_g grouping
        |> List.fold_left
             (fun acc (a, b, w) ->
               Hashtbl.replace acc (a, b) w;
               acc)
             (Hashtbl.create 64)
      in
      let best = ref None in
      List.iter
        (fun (a, b, w) ->
          let old = Option.value (Hashtbl.find_opt prev (a, b)) ~default:0.0 in
          let delta = w -. old in
          match !best with
          | Some (_, _, d) when d >= delta -> ()
          | _ -> best := Some (a, b, delta))
        current;
      Option.map (fun (a, b, _) -> (a, b)) !best

let inc_update ~rng ~limit ?previous ~intensity grouping =
  match find_candidate_pair ?previous intensity grouping with
  | None -> None
  | Some (ga, gb) ->
      let a = Grouping.assignment grouping in
      let merged =
        Array.of_list
          (List.concat
             [
               List.map Lazyctrl_net.Ids.Switch_id.to_int
                 (Grouping.members grouping (Lazyctrl_net.Ids.Group_id.of_int ga));
               List.map Lazyctrl_net.Ids.Switch_id.to_int
                 (Grouping.members grouping (Lazyctrl_net.Ids.Group_id.of_int gb));
             ])
      in
      let sub, mapping = Wgraph.induced intensity merged in
      (* Minimum-communication re-split of the merged pair under the size
         cap; when the merged pair fits inside the limit, collapse the two
         groups into one (maximizing laziness, as the paper prefers). *)
      let old_cut = Partition.edge_cut intensity a in
      let proposal =
        if Array.length merged <= limit then begin
          let a' = Array.copy a in
          Array.iter (fun sw -> a'.(sw) <- ga) merged;
          Some a'
        end
        else begin
          let split = Partition.bisect ~rng ~max_part_weight:limit sub in
          let a' = Array.copy a in
          Array.iteri
            (fun i sw -> a'.(sw) <- (if split.(i) = 0 then ga else gb))
            mapping;
          Some a'
        end
      in
      (match proposal with
      | None -> None
      | Some a' ->
          let new_cut = Partition.edge_cut intensity a' in
          if new_cut < old_cut then Some (Grouping.of_assignment a') else None)

(* Greedy maximal matching over group pairs, heaviest exchange first. *)
let disjoint_candidate_pairs g grouping =
  let used = Hashtbl.create 16 in
  Grouping.group_pair_intensity g grouping
  |> List.filter_map (fun (a, b, _) ->
         if Hashtbl.mem used a || Hashtbl.mem used b then None
         else begin
           Hashtbl.replace used a ();
           Hashtbl.replace used b ();
           Some (a, b)
         end)

(* Merge-and-split of one group pair as a pure subproblem: returns the new
   (sub-)assignment for the pair's switches, or None when nothing improved. *)
let resplit_pair ~rng ~limit ~intensity grouping (ga, gb) =
  let members gid =
    List.map Lazyctrl_net.Ids.Switch_id.to_int
      (Grouping.members grouping (Lazyctrl_net.Ids.Group_id.of_int gid))
  in
  let merged = Array.of_list (members ga @ members gb) in
  let sub, mapping = Wgraph.induced intensity merged in
  let old_cut =
    let a = Grouping.assignment grouping in
    let in_pair = Hashtbl.create 16 in
    Array.iter (fun sw -> Hashtbl.replace in_pair sw ()) merged;
    let cut = ref 0.0 in
    Wgraph.iter_edges intensity (fun u v w ->
        if
          Hashtbl.mem in_pair u && Hashtbl.mem in_pair v
          && a.(u) <> a.(v)
        then cut := !cut +. w);
    !cut
  in
  if Array.length merged <= limit then
    (* Collapsing the pair removes their mutual cut entirely. *)
    if old_cut > 0.0 then Some (merged, Array.make (Array.length merged) ga)
    else None
  else begin
    let split = Partition.bisect ~rng ~max_part_weight:limit sub in
    let new_cut =
      let cut = ref 0.0 in
      Wgraph.iter_edges sub (fun u v w ->
          if split.(u) <> split.(v) then cut := !cut +. w);
      !cut
    in
    if new_cut < old_cut then begin
      ignore mapping;
      Some (merged, Array.map (fun side -> if side = 0 then ga else gb) split)
    end
    else None
  end

let inc_update_batch ~rng ~limit ?(domains = 1) ~intensity grouping =
  match disjoint_candidate_pairs intensity grouping with
  | [] -> None
  | pairs ->
      (* A private, label-derived stream per pair keeps results identical
         whether subproblems run sequentially or on separate domains. *)
      let jobs =
        List.map
          (fun (ga, gb) ->
            let pair_rng = Prng.named rng (Printf.sprintf "pair-%d-%d" ga gb) in
            fun () -> resplit_pair ~rng:pair_rng ~limit ~intensity grouping (ga, gb))
          pairs
      in
      let results =
        if domains <= 1 then List.map (fun job -> job ()) jobs
        else begin
          (* Bounded fan-out: spawn in waves of [domains]. *)
          let rec waves acc = function
            | [] -> List.rev acc
            | jobs ->
                let rec take n = function
                  | [] -> ([], [])
                  | x :: rest when n > 0 ->
                      let batch, rem = take (n - 1) rest in
                      (x :: batch, rem)
                  | rest -> ([], rest)
                in
                let batch, rest = take domains jobs in
                let handles = List.map (fun job -> Domain.spawn job) batch in
                let got = List.map Domain.join handles in
                waves (List.rev_append got acc) rest
          in
          waves [] jobs
        end
      in
      let a = Array.copy (Grouping.assignment grouping) in
      let improved = ref false in
      List.iter
        (function
          | None -> ()
          | Some (switches, labels) ->
              improved := true;
              Array.iteri (fun i sw -> a.(sw) <- labels.(i)) switches)
        results;
      if !improved then Some (Grouping.of_assignment a) else None

let converge ~rng ~limit ~intensity ~load ~threshold_high ~threshold_low
    ~max_iterations grouping =
  let rec loop grouping applied iters =
    if iters >= max_iterations then (grouping, applied)
    else if load grouping <= threshold_high then (grouping, applied)
    else
      match inc_update ~rng ~limit ~intensity grouping with
      | None -> (grouping, applied)
      | Some grouping' ->
          if load grouping' < threshold_low then (grouping', applied + 1)
          else loop grouping' (applied + 1) (iters + 1)
  in
  loop grouping 0 0
