(** SGI — the paper's Size-constrained Grouping algorithm with
    Incremental update support (Fig. 3).

    [ini_group] is the initial stage: build the intensity graph and run a
    size-constrained multilevel k-way partition, with [k] estimated as the
    switch count over the group size limit.

    [inc_update] is one iteration of the background refinement: pick the
    two groups exchanging the most traffic (optionally, whose exchange
    *grew* the most against a previous intensity graph), merge them, and
    re-split the merged subgraph with a size-constrained min-cut
    bisection (Stoer–Wagner-guided, per [29]).

    [converge] iterates [inc_update] while a load signal stays above a
    threshold, mirroring the pseudocode's outer loop. *)

open Lazyctrl_graph
module Prng = Lazyctrl_util.Prng

val estimate_k : n_switches:int -> limit:int -> int
(** [ceil (n / limit)], at least 1. *)

val ini_group : rng:Prng.t -> limit:int -> ?k:int -> Wgraph.t -> Grouping.t
(** @raise Invalid_argument if [limit < 1] or an explicit [k] makes the
    cap infeasible. *)

val find_candidate_pair :
  ?previous:Wgraph.t -> Wgraph.t -> Grouping.t -> (int * int) option
(** The two groups to merge: highest current inter-group intensity, or —
    when [previous] is supplied — highest intensity increase since then.
    [None] when no two groups exchange traffic. *)

val inc_update :
  rng:Prng.t ->
  limit:int ->
  ?previous:Wgraph.t ->
  intensity:Wgraph.t ->
  Grouping.t ->
  Grouping.t option
(** One merge-and-split step; [None] when no candidate pair exists or the
    split does not improve [W_inter]. The result never violates the size
    limit. *)

val inc_update_batch :
  rng:Prng.t ->
  limit:int ->
  ?domains:int ->
  intensity:Wgraph.t ->
  Grouping.t ->
  Grouping.t option
(** Appendix B "acceleration by parallelism": pick the top disjoint group
    pairs by exchanged traffic and run the merge-and-split of each pair
    concurrently ([domains] > 1 uses that many OCaml domains; default 1 is
    sequential but still batched). Each pair's subproblem is independent,
    so the result is deterministic for a given seed regardless of
    [domains]. [None] when no pair's re-split improves the cut. *)

val converge :
  rng:Prng.t ->
  limit:int ->
  intensity:Wgraph.t ->
  load:(Grouping.t -> float) ->
  threshold_high:float ->
  threshold_low:float ->
  max_iterations:int ->
  Grouping.t ->
  Grouping.t * int
(** Iterate while [load grouping > threshold_high], stopping early once it
    falls below [threshold_low] or an iteration makes no progress. Returns
    the final grouping and the number of applied updates. *)
