(** Group-size-limit negotiation (Appendix C).

    The paper sketches a modified Rubinstein alternating-offers bargaining
    game between the controller (which wants {e large} groups — fewer
    inter-group events, a lazier controller) and the switches (which want
    {e small} groups — fewer L-FIB/G-FIB entries and less state to gossip).

    The bargaining pie is the interval between the switches' preferred
    limit and the controller's preferred limit. With discount factors
    [delta_c] and [delta_s] (impatience: how fast each side's utility
    decays per round of disagreement), the unique subgame-perfect
    equilibrium gives the proposer (controller) the share
    [(1 - delta_s) / (1 - delta_c * delta_s)] of the pie, accepted in the
    first round. [simulate] plays the game explicitly and must agree with
    the closed form; it also reports the round of agreement when players
    deviate from equilibrium offers by an [epsilon]. *)

type player = {
  ideal : int;      (** preferred group-size limit *)
  discount : float; (** per-round utility retention, in (0,1) *)
}

val equilibrium_limit : controller:player -> switches:player -> int
(** Closed-form Rubinstein split of the [switches.ideal .. controller.ideal]
    interval (controller proposes first). Works for either ordering of the
    two ideals. @raise Invalid_argument on discounts outside (0,1). *)

type outcome = { limit : int; rounds : int; proposer_share : float }

val simulate :
  ?max_rounds:int -> ?epsilon:float -> controller:player -> switches:player ->
  unit -> outcome
(** Alternating offers with backward induction from [max_rounds] (default
    64): each proposer offers the responder exactly the responder's
    discounted continuation value (plus [epsilon] slack, default 1e-9).
    Converges to the closed form as [max_rounds] grows. *)

val capacity_preference :
  tcam_entries:int -> lfib_entry_bytes:int -> gfib_bytes_per_peer:int -> int
(** A concrete switch-side ideal: the largest group size whose per-switch
    G-FIB state fits the given TCAM/SRAM budget (cf. §V-D's 92,160-byte
    example). *)
