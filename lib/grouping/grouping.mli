(** Switch groupings (the sets of Local Control Groups).

    A grouping is an immutable partition of the edge switches [0..n-1]
    into disjoint groups with dense {!Lazyctrl_net.Ids.Group_id} labels.
    Quality is judged exactly as in §III-C: the (normalized) inter-group
    traffic intensity [W_inter] under a switch-level intensity graph. *)

open Lazyctrl_net
open Lazyctrl_graph

type t

val of_assignment : int array -> t
(** [of_assignment a] with [a.(sw) = raw group label]; labels are
    renumbered densely in order of first appearance.
    @raise Invalid_argument on an empty array or negative label. *)

val singleton_groups : n_switches:int -> t
(** Each switch in its own group (the degenerate, fully-lazy-free case). *)

val one_group : n_switches:int -> t

val n_switches : t -> int
val n_groups : t -> int
val group_of : t -> Ids.Switch_id.t -> Ids.Group_id.t
val members : t -> Ids.Group_id.t -> Ids.Switch_id.t list
(** Ascending switch order. *)

val sizes : t -> int array
val max_group_size : t -> int
val assignment : t -> int array
(** A copy of the dense assignment. *)

val same_group : t -> Ids.Switch_id.t -> Ids.Switch_id.t -> bool

val inter_group_intensity : Wgraph.t -> t -> float
(** [W_inter]: total intensity between switches in different groups.
    @raise Invalid_argument if the graph size differs. *)

val normalized_inter : Wgraph.t -> t -> float
(** [W_inter] over total intensity, in [\[0,1\]] (0 on an edgeless graph). *)

val group_pair_intensity : Wgraph.t -> t -> (int * int * float) list
(** Intensity between each pair of groups with non-zero exchange,
    descending by weight. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
