(** Graph coarsening by heavy-edge matching (the first phase of the
    multilevel partitioner).

    Vertices are visited in random order; each unmatched vertex is matched
    with the unmatched neighbour joined by the heaviest edge. Matched pairs
    collapse into one coarse vertex whose weight is the sum of the pair's
    weights; edge weights between coarse vertices accumulate. *)

val heavy_edge_matching : rng:Lazyctrl_util.Prng.t -> Wgraph.t -> int array
(** [heavy_edge_matching ~rng g] returns [cmap] with [cmap.(v)] the coarse
    vertex id of [v]; coarse ids are dense in [0..n'-1]. Unmatched vertices
    map to singleton coarse vertices. *)

val contract : Wgraph.t -> int array -> Wgraph.t
(** [contract g cmap] builds the coarse graph induced by a coarse-vertex
    mapping. Self-loops produced by contraction are dropped (they do not
    contribute to any cut). *)

val coarsen : rng:Lazyctrl_util.Prng.t -> Wgraph.t -> Wgraph.t * int array
(** [heavy_edge_matching] followed by [contract]. *)
