(** Weighted undirected graphs in CSR (compressed sparse row) form.

    Vertices are [0..n-1]. Each vertex carries an integer weight (the
    number of original vertices it represents after coarsening; 1 in an
    input graph). Edges carry float weights (traffic intensity between two
    edge switches). Parallel edges added to the builder are merged by
    summing their weights; self-loops are dropped. *)

type t

module Builder : sig
  type graph = t

  type t

  val create : n:int -> t

  val add_edge : t -> int -> int -> float -> unit
  (** Undirected; repeated pairs accumulate. Self-loops are ignored.
      Negative weights are rejected.
      @raise Invalid_argument on out-of-range vertices or negative
      weight. *)

  val set_vertex_weight : t -> int -> int -> unit
  (** Default vertex weight is 1. *)

  val build : t -> graph
end

val n_vertices : t -> int
val n_edges : t -> int
(** Undirected edge count (each pair counted once). *)

val vertex_weight : t -> int -> int
val total_vertex_weight : t -> int

val total_edge_weight : t -> float
(** Sum over undirected edges. *)

val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
(** [iter_neighbors g u f] calls [f v w] for every edge [u–v] of weight
    [w]. *)

val fold_neighbors : t -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a

val iter_edges : t -> (int -> int -> float -> unit) -> unit
(** Each undirected edge visited once with [u < v]. *)

val edge_weight : t -> int -> int -> float
(** 0 when not adjacent. O(degree). *)

val weight_between : t -> int list -> int list -> float
(** Total weight of edges with one endpoint in each (disjoint) set. *)

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph on the vertices [vs] (in the given
    order: new vertex [i] is [vs.(i)]) together with the mapping back to
    the original ids, i.e. the second component is [vs] itself. Vertex
    weights are preserved. *)

val of_edges : n:int -> (int * int * float) list -> t
(** Convenience builder. *)

val pp : Format.formatter -> t -> unit
