module Heap = Lazyctrl_util.Heap
module Prng = Lazyctrl_util.Prng
module Det = Lazyctrl_util.Det

type assignment = int array

let edge_cut g a =
  let cut = ref 0.0 in
  Wgraph.iter_edges g (fun u v w -> if a.(u) <> a.(v) then cut := !cut +. w);
  !cut

let normalized_cut g a =
  let tw = Wgraph.total_edge_weight g in
  if tw <= 0.0 then 0.0 else edge_cut g a /. tw

let part_weights g ~k a =
  let pw = Array.make k 0 in
  Array.iteri (fun v p -> pw.(p) <- pw.(p) + Wgraph.vertex_weight g v) a;
  pw

let balance g ~k a =
  let pw = part_weights g ~k a in
  let total = Array.fold_left ( + ) 0 pw in
  if total = 0 then 1.0
  else
    Float.of_int (k * Array.fold_left max 0 pw) /. Float.of_int total

let validate g ~k ?max_part_weight a =
  let n = Wgraph.n_vertices g in
  if Array.length a <> n then Error "assignment length mismatch"
  else if Array.exists (fun p -> p < 0 || p >= k) a then
    Error "part index out of range"
  else
    match max_part_weight with
    | None -> Ok ()
    | Some cap ->
        let pw = part_weights g ~k a in
        let bad = ref None in
        Array.iteri
          (fun p w -> if w > cap && Option.is_none !bad then bad := Some (p, w))
          pw;
        (match !bad with
        | None -> Ok ()
        | Some (p, w) ->
            Error (Printf.sprintf "part %d weight %d exceeds cap %d" p w cap))

let default_cap g ~k =
  let total = Wgraph.total_vertex_weight g in
  let slack = int_of_float (Float.ceil (1.1 *. Float.of_int total /. Float.of_int k)) in
  let max_vw = ref 1 in
  for v = 0 to Wgraph.n_vertices g - 1 do
    max_vw := max !max_vw (Wgraph.vertex_weight g v)
  done;
  max slack !max_vw

(* Connection weights from vertex [v] to each part, as an association over
   the parts adjacent to [v], sorted by part index so callers scan it in a
   deterministic order. *)
let connections g a v =
  let conn = Hashtbl.create 8 in
  Wgraph.iter_neighbors g v (fun u w ->
      let p = a.(u) in
      if p >= 0 then
        Hashtbl.replace conn p (w +. Option.value (Hashtbl.find_opt conn p) ~default:0.0));
  Det.bindings_sorted ~cmp:Int.compare conn

let refine g ~k ?max_part_weight ?(passes = 8) a =
  let cap = match max_part_weight with Some c -> c | None -> default_cap g ~k in
  let n = Wgraph.n_vertices g in
  let pw = part_weights g ~k a in
  let moves = ref 0 in
  let pass () =
    let moved = ref 0 in
    for v = 0 to n - 1 do
      let from = a.(v) in
      let vw = Wgraph.vertex_weight g v in
      let conn = connections g a v in
      let internal =
        Option.value (List.assoc_opt from conn) ~default:0.0
      in
      let best_p = ref (-1) and best_gain = ref 0.0 in
      List.iter
        (fun (p, w) ->
          if p <> from && pw.(p) + vw <= cap then begin
            let gain = w -. internal in
            let better =
              gain > !best_gain
              || (Float.equal gain !best_gain && !best_p >= 0
                  && pw.(p) < pw.(!best_p))
            in
            if gain > 0.0 && (!best_p < 0 || better) then begin
              best_p := p;
              best_gain := gain
            end
          end)
        conn;
      if !best_p >= 0 then begin
        pw.(from) <- pw.(from) - vw;
        pw.(!best_p) <- pw.(!best_p) + vw;
        a.(v) <- !best_p;
        incr moved
      end
    done;
    !moved
  in
  let rec loop i =
    if i < passes then begin
      let m = pass () in
      moves := !moves + m;
      if m > 0 then loop (i + 1)
    end
  in
  loop 0;
  !moves

(* Move vertices out of over-cap parts into parts with room, preferring
   moves that lose the least connectivity. Works at any level but is only
   guaranteed to converge when vertex weights can fit the available room —
   always true at the finest level where weights are 1. *)
let repair g ~k ~cap a =
  let n = Wgraph.n_vertices g in
  let pw = part_weights g ~k a in
  let overweight () =
    let r = ref (-1) in
    Array.iteri (fun p w -> if w > cap && !r < 0 then r := p) pw;
    !r
  in
  let guard = ref (4 * n) in
  let rec fix () =
    let p = overweight () in
    if p >= 0 && !guard > 0 then begin
      decr guard;
      (* Cheapest vertex of part p to evict: maximize (external best conn -
         internal conn) over destinations with room. *)
      let best = ref None in
      for v = 0 to n - 1 do
        if a.(v) = p then begin
          let vw = Wgraph.vertex_weight g v in
          let conn = connections g a v in
          let internal = Option.value (List.assoc_opt p conn) ~default:0.0 in
          for q = 0 to k - 1 do
            if q <> p && pw.(q) + vw <= cap then begin
              let ext = Option.value (List.assoc_opt q conn) ~default:0.0 in
              let gain = ext -. internal in
              match !best with
              | Some (_, _, g', _) when g' >= gain -> ()
              | _ -> best := Some (v, q, gain, vw)
            end
          done
        end
      done;
      match !best with
      | None -> () (* no destination has room; leave for validate to flag *)
      | Some (v, q, _, vw) ->
          a.(v) <- q;
          pw.(p) <- pw.(p) - vw;
          pw.(q) <- pw.(q) + vw;
          fix ()
    end
  in
  fix ()

let initial_partition ~rng ~cap ~k g =
  let n = Wgraph.n_vertices g in
  let total = Wgraph.total_vertex_weight g in
  let target = (total + k - 1) / k in
  let a = Array.make n (-1) in
  let pw = Array.make k 0 in
  let order = Array.init n (fun i -> i) in
  Prng.shuffle rng order;
  let cursor = ref 0 in
  let next_unassigned () =
    while !cursor < n && a.(order.(!cursor)) >= 0 do
      incr cursor
    done;
    if !cursor < n then Some order.(!cursor) else None
  in
  let assign v p =
    a.(v) <- p;
    pw.(p) <- pw.(p) + Wgraph.vertex_weight g v
  in
  (* Grow parts 0..k-1 by greedy region growing up to the target weight. *)
  for p = 0 to k - 1 do
    match next_unassigned () with
    | None -> ()
    | Some seed ->
        let frontier = Heap.Indexed.create n in
        let bump v w =
          if a.(v) < 0 then
            let prev = try Heap.Indexed.priority frontier v with Not_found -> 0.0 in
            Heap.Indexed.adjust frontier v (prev +. w)
        in
        assign seed p;
        Wgraph.iter_neighbors g seed bump;
        let continue = ref true in
        while !continue && pw.(p) < target do
          match Heap.Indexed.pop_max frontier with
          | None -> continue := false (* component exhausted; stay compact *)
          | Some (v, _) ->
              if a.(v) < 0 && pw.(p) + Wgraph.vertex_weight g v <= cap then begin
                assign v p;
                Wgraph.iter_neighbors g v bump
              end
        done
  done;
  (* Leftovers: most-connected part with room, else the lightest part with
     room, else the lightest overall (repaired or flagged later). *)
  for i = 0 to n - 1 do
    let v = order.(i) in
    if a.(v) < 0 then begin
      let vw = Wgraph.vertex_weight g v in
      let conn = connections g a v in
      let best = ref (-1) and best_w = ref neg_infinity in
      List.iter
        (fun (p, w) ->
          if p >= 0 && pw.(p) + vw <= cap && w > !best_w then begin
            best := p;
            best_w := w
          end)
        conn;
      if !best < 0 then begin
        let lightest_with_room = ref (-1) in
        for p = 0 to k - 1 do
          if
            pw.(p) + vw <= cap
            && (!lightest_with_room < 0 || pw.(p) < pw.(!lightest_with_room))
          then lightest_with_room := p
        done;
        best :=
          (if !lightest_with_room >= 0 then !lightest_with_room
           else begin
             let lightest = ref 0 in
             for p = 1 to k - 1 do
               if pw.(p) < pw.(!lightest) then lightest := p
             done;
             !lightest
           end)
      end;
      assign v !best
    end
  done;
  a

let multilevel_kway ~rng ?max_part_weight ~k g =
  if k < 1 then invalid_arg "Partition.multilevel_kway: k < 1";
  let total = Wgraph.total_vertex_weight g in
  (match max_part_weight with
  | Some cap when k * cap < total ->
      invalid_arg "Partition.multilevel_kway: infeasible size cap"
  | _ -> ());
  let n = Wgraph.n_vertices g in
  if k = 1 then Array.make n 0
  else begin
    let cap = match max_part_weight with Some c -> c | None -> default_cap g ~k in
    let coarse_enough m = m <= max (8 * k) 64 in
    let rec ml g =
      let m = Wgraph.n_vertices g in
      if coarse_enough m then begin
        let a = initial_partition ~rng ~cap ~k g in
        ignore (refine g ~k ~max_part_weight:cap a);
        a
      end
      else begin
        let cg, cmap = Coarsen.coarsen ~rng g in
        (* Matching can stall on star-like graphs; bail out to the initial
           partitioner rather than recurse without progress. *)
        if Wgraph.n_vertices cg * 100 > m * 97 then begin
          let a = initial_partition ~rng ~cap ~k g in
          ignore (refine g ~k ~max_part_weight:cap a);
          a
        end
        else begin
          let ca = ml cg in
          let a = Array.init m (fun v -> ca.(cmap.(v))) in
          ignore (refine g ~k ~max_part_weight:cap a);
          a
        end
      end
    in
    let a = ml g in
    (match max_part_weight with Some cap -> repair g ~k ~cap a | None -> ());
    a
  end

let bisect ~rng ?max_part_weight g =
  multilevel_kway ~rng ?max_part_weight ~k:2 g
