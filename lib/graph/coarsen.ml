let heavy_edge_matching ~rng g =
  let n = Wgraph.n_vertices g in
  let mate = Array.make n (-1) in
  let order = Array.init n (fun i -> i) in
  Lazyctrl_util.Prng.shuffle rng order;
  Array.iter
    (fun u ->
      if mate.(u) < 0 then begin
        (* Heaviest unmatched neighbour; ties broken by smaller id for
           determinism given the visit order. *)
        let best = ref (-1) and best_w = ref neg_infinity in
        Wgraph.iter_neighbors g u (fun v w ->
            if mate.(v) < 0 && v <> u then
              if w > !best_w || (w = !best_w && (!best < 0 || v < !best)) then begin
                best := v;
                best_w := w
              end);
        if !best >= 0 then begin
          mate.(u) <- !best;
          mate.(!best) <- u
        end
        else mate.(u) <- u
      end)
    order;
  (* Assign dense coarse ids: each pair (or singleton) gets one id, owned
     by its smaller endpoint. *)
  let cmap = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let m = if mate.(v) < 0 then v else mate.(v) in
    if cmap.(v) < 0 then begin
      let id = !next in
      incr next;
      cmap.(v) <- id;
      if m <> v then cmap.(m) <- id
    end
  done;
  cmap

let contract g cmap =
  let n = Wgraph.n_vertices g in
  let n' = Array.fold_left (fun acc c -> max acc (c + 1)) 0 cmap in
  let b = Wgraph.Builder.create ~n:n' in
  let cw = Array.make n' 0 in
  for v = 0 to n - 1 do
    cw.(cmap.(v)) <- cw.(cmap.(v)) + Wgraph.vertex_weight g v
  done;
  Array.iteri (fun c w -> Wgraph.Builder.set_vertex_weight b c (max w 1)) cw;
  Wgraph.iter_edges g (fun u v w ->
      if cmap.(u) <> cmap.(v) then Wgraph.Builder.add_edge b cmap.(u) cmap.(v) w);
  Wgraph.Builder.build b

let coarsen ~rng g =
  let cmap = heavy_edge_matching ~rng g in
  (contract g cmap, cmap)
