(** Multilevel k-way graph partitioning (MLkP, after Karypis & Kumar) with
    hard per-part weight caps — the engine behind the paper's [IniGroup].

    The pipeline is the classic one: coarsen by heavy-edge matching until
    the graph is small, partition the coarsest graph by greedy region
    growing, then uncoarsen while refining with greedy boundary moves
    (a Kernighan–Lin / Fiduccia–Mattheyses-style gain pass) that respect
    the size constraint. *)

type assignment = int array
(** [a.(v)] is the part (in [0..k-1]) of vertex [v]. *)

val edge_cut : Wgraph.t -> assignment -> float
(** Total weight of edges whose endpoints lie in different parts — the
    paper's (unnormalized) inter-group traffic intensity [W_inter]. *)

val normalized_cut : Wgraph.t -> assignment -> float
(** [edge_cut / total_edge_weight], in [\[0,1\]]; 0 on an edgeless graph. *)

val part_weights : Wgraph.t -> k:int -> assignment -> int array
(** Vertex-weight mass of each part. *)

val balance : Wgraph.t -> k:int -> assignment -> float
(** [k * max part weight / total weight]; 1.0 is perfect balance. *)

val validate :
  Wgraph.t -> k:int -> ?max_part_weight:int -> assignment -> (unit, string) result
(** Checks assignment length, part-index range and the weight cap. *)

val multilevel_kway :
  rng:Lazyctrl_util.Prng.t ->
  ?max_part_weight:int ->
  k:int ->
  Wgraph.t ->
  assignment
(** [multilevel_kway ~rng ~k g] partitions into at most [k] parts. When
    [max_part_weight] is given it is a hard cap, enforced by refinement and
    a final repair pass; it must satisfy [k * max_part_weight >= total
    vertex weight].
    @raise Invalid_argument if [k < 1] or the cap is infeasible. *)

val bisect :
  rng:Lazyctrl_util.Prng.t -> ?max_part_weight:int -> Wgraph.t -> assignment
(** Balanced min-cut bisection ([k = 2]) — the split step of the paper's
    [IncUpdate]. *)

val refine :
  Wgraph.t -> k:int -> ?max_part_weight:int -> ?passes:int -> assignment -> int
(** In-place greedy boundary refinement; returns the number of moves made.
    Exposed for incremental regrouping and tests. Default 8 passes. *)
