type t = {
  xadj : int array; (* n+1 offsets into adjncy *)
  adjncy : int array;
  adjwgt : float array;
  vwgt : int array;
  total_ew : float;
}

module Builder = struct
  type graph = t

  type t = {
    n : int;
    edges : (int * int, float) Hashtbl.t; (* key has u < v *)
    weights : int array;
  }

  let create ~n =
    if n < 0 then invalid_arg "Wgraph.Builder.create: negative size";
    { n; edges = Hashtbl.create (4 * n); weights = Array.make (max n 1) 1 }

  let check t v =
    if v < 0 || v >= t.n then invalid_arg "Wgraph.Builder: vertex out of range"

  let add_edge t u v w =
    check t u;
    check t v;
    if w < 0.0 then invalid_arg "Wgraph.Builder.add_edge: negative weight";
    if u <> v && w > 0.0 then begin
      let key = if u < v then (u, v) else (v, u) in
      let prev = Option.value (Hashtbl.find_opt t.edges key) ~default:0.0 in
      Hashtbl.replace t.edges key (prev +. w)
    end

  let set_vertex_weight t v w =
    check t v;
    if w <= 0 then invalid_arg "Wgraph.Builder.set_vertex_weight: non-positive";
    t.weights.(v) <- w

  let build t =
    (* Deterministic edge order: snapshot the edge table once, sorted. *)
    let edge_list =
      List.map
        (fun ((u, v), w) -> (u, v, w))
        (Lazyctrl_util.Det.bindings_sorted ~cmp:Lazyctrl_util.Det.pair_compare
           t.edges)
    in
    let deg = Array.make t.n 0 in
    List.iter
      (fun (u, v, _) ->
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1)
      edge_list;
    let xadj = Array.make (t.n + 1) 0 in
    for i = 0 to t.n - 1 do
      xadj.(i + 1) <- xadj.(i) + deg.(i)
    done;
    let m2 = xadj.(t.n) in
    let adjncy = Array.make m2 0 in
    let adjwgt = Array.make m2 0.0 in
    let cursor = Array.copy xadj in
    let total = ref 0.0 in
    List.iter
      (fun (u, v, w) ->
        adjncy.(cursor.(u)) <- v;
        adjwgt.(cursor.(u)) <- w;
        cursor.(u) <- cursor.(u) + 1;
        adjncy.(cursor.(v)) <- u;
        adjwgt.(cursor.(v)) <- w;
        cursor.(v) <- cursor.(v) + 1;
        total := !total +. w)
      edge_list;
    { xadj; adjncy; adjwgt; vwgt = Array.sub t.weights 0 t.n; total_ew = !total }
end

let n_vertices t = Array.length t.vwgt
let n_edges t = Array.length t.adjncy / 2
let vertex_weight t v = t.vwgt.(v)
let total_vertex_weight t = Array.fold_left ( + ) 0 t.vwgt
let total_edge_weight t = t.total_ew
let degree t v = t.xadj.(v + 1) - t.xadj.(v)

let iter_neighbors t u f =
  for i = t.xadj.(u) to t.xadj.(u + 1) - 1 do
    f t.adjncy.(i) t.adjwgt.(i)
  done

let fold_neighbors t u f init =
  let acc = ref init in
  iter_neighbors t u (fun v w -> acc := f !acc v w);
  !acc

let iter_edges t f =
  for u = 0 to n_vertices t - 1 do
    iter_neighbors t u (fun v w -> if u < v then f u v w)
  done

let edge_weight t u v =
  fold_neighbors t u (fun acc x w -> if x = v then acc +. w else acc) 0.0

let weight_between t xs ys =
  let in_y = Hashtbl.create (List.length ys) in
  List.iter (fun y -> Hashtbl.replace in_y y ()) ys;
  List.fold_left
    (fun acc x ->
      fold_neighbors t x
        (fun acc v w -> if Hashtbl.mem in_y v then acc +. w else acc)
        acc)
    0.0 xs

let induced t vs =
  let n' = Array.length vs in
  let index = Hashtbl.create n' in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vs;
  let b = Builder.create ~n:n' in
  Array.iteri
    (fun i v ->
      Builder.set_vertex_weight b i (vertex_weight t v);
      iter_neighbors t v (fun u w ->
          match Hashtbl.find_opt index u with
          | Some j when i < j -> Builder.add_edge b i j w
          | _ -> ()))
    vs;
  (Builder.build b, vs)

let of_edges ~n edges =
  let b = Builder.create ~n in
  List.iter (fun (u, v, w) -> Builder.add_edge b u v w) edges;
  Builder.build b

let pp fmt t =
  Format.fprintf fmt "graph(n=%d m=%d ew=%.2f)" (n_vertices t) (n_edges t)
    (total_edge_weight t)
