(** Global minimum cut by the Stoer–Wagner algorithm (the paper's cited
    primitive for splitting a merged group, [29]).

    O(V·E + V² log V) via maximum-adjacency search with an indexed heap.
    Intended for the merged two-group subgraphs handled by [IncUpdate]
    (hundreds of vertices), not for the full data-center graph. *)

val stoer_wagner : Wgraph.t -> float * bool array
(** [stoer_wagner g] returns the weight of a global minimum cut and a
    side marker ([true] for vertices on one side). The graph must have at
    least 2 vertices; disconnected graphs yield a 0-weight cut.
    @raise Invalid_argument with fewer than 2 vertices. *)

val cut_weight : Wgraph.t -> bool array -> float
(** Weight of the cut induced by a side marker. *)
