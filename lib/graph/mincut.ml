module Heap = Lazyctrl_util.Heap
module Det = Lazyctrl_util.Det

let cut_weight g side =
  let w = ref 0.0 in
  Wgraph.iter_edges g (fun u v ew -> if side.(u) <> side.(v) then w := !w +. ew);
  !w

(* Stoer–Wagner with vertex merging tracked by explicit membership lists.
   Each "supervertex" is a set of original vertices; adjacency between
   supervertices is kept in hashtables and updated on merge. *)
let stoer_wagner g =
  let n = Wgraph.n_vertices g in
  if n < 2 then invalid_arg "Mincut.stoer_wagner: need at least 2 vertices";
  (* alive supervertices; adj.(i) maps supervertex j -> weight *)
  let alive = Array.make n true in
  let members = Array.init n (fun v -> [ v ]) in
  let adj = Array.init n (fun _ -> Hashtbl.create 8) in
  Wgraph.iter_edges g (fun u v w ->
      let bump a b =
        Hashtbl.replace adj.(a) b
          (w +. Option.value (Hashtbl.find_opt adj.(a) b) ~default:0.0)
      in
      bump u v;
      bump v u);
  let best_weight = ref infinity in
  let best_side = ref [] in
  let n_alive = ref n in
  while !n_alive > 1 do
    (* Maximum-adjacency search over alive supervertices. *)
    let in_a = Array.make n false in
    let heap = Heap.Indexed.create n in
    let start = ref (-1) in
    (for v = 0 to n - 1 do
       if alive.(v) && !start < 0 then start := v
     done);
    let order = ref [] in
    let add_to_a v =
      in_a.(v) <- true;
      order := v :: !order;
      Heap.Indexed.remove heap v;
      (* Sorted neighbour order: the float additions below are
         order-sensitive, and ties in the heap must break the same way
         every run. *)
      Det.iter_sorted ~cmp:Int.compare
        (fun u w ->
          if alive.(u) && not in_a.(u) then
            let prev = try Heap.Indexed.priority heap u with Not_found -> 0.0 in
            Heap.Indexed.adjust heap u (prev +. w))
        adj.(v)
    in
    add_to_a !start;
    let last = ref !start and before_last = ref !start and last_w = ref 0.0 in
    let remaining = ref (!n_alive - 1) in
    while !remaining > 0 do
      match Heap.Indexed.pop_max heap with
      | Some (v, w) ->
          before_last := !last;
          last := v;
          last_w := w;
          add_to_a v;
          decr remaining
      | None ->
          (* Disconnected: pick any alive vertex not yet in A with weight 0. *)
          let v = ref (-1) in
          for u = 0 to n - 1 do
            if alive.(u) && (not in_a.(u)) && !v < 0 then v := u
          done;
          before_last := !last;
          last := !v;
          last_w := 0.0;
          add_to_a !v;
          decr remaining
    done;
    (* Cut-of-the-phase: the last vertex added vs the rest. *)
    if !last_w < !best_weight then begin
      best_weight := !last_w;
      best_side := members.(!last)
    end;
    (* Merge last into before_last. *)
    let s = !before_last and t = !last in
    alive.(t) <- false;
    decr n_alive;
    members.(s) <- members.(t) @ members.(s);
    Det.iter_sorted ~cmp:Int.compare
      (fun u w ->
        if u <> s && alive.(u) then begin
          let bump a b =
            Hashtbl.replace adj.(a) b
              (w +. Option.value (Hashtbl.find_opt adj.(a) b) ~default:0.0)
          in
          bump s u;
          bump u s
        end;
        Hashtbl.remove adj.(u) t)
      adj.(t);
    Hashtbl.reset adj.(t);
    Hashtbl.remove adj.(s) t
  done;
  let side = Array.make n false in
  List.iter (fun v -> side.(v) <- true) !best_side;
  (!best_weight, side)
