(** The simulated network core.

    Per the paper's core–edge separation, the core is "any simple and
    scalable network" that gives one-hop logical connectivity between edge
    switches. We model it as a full mesh of IP paths with a uniform base
    latency, optional jitter, and per-path failure injection (for the
    detour-routing failover experiments). Encapsulated frames are routed
    by their outer destination IP. *)

open Lazyctrl_sim
open Lazyctrl_net

type t

val create :
  Engine.t -> latency:Time.t -> ?jitter:(unit -> Time.t) -> unit -> t

val register : t -> Ipv4.t -> (Packet.t -> unit) -> unit
(** Attach an endpoint (an edge switch's tunnel interface). *)

val send : t -> Packet.t -> bool
(** Route an encapsulated frame to its outer destination. Returns [false]
    (and counts a drop) for plain frames, unknown endpoints, or failed
    paths. *)

val fail_path : t -> src:Ipv4.t -> dst:Ipv4.t -> unit
(** Break the directed path; packets sent on it are dropped until
    repaired. *)

val repair_path : t -> src:Ipv4.t -> dst:Ipv4.t -> unit
val path_up : t -> src:Ipv4.t -> dst:Ipv4.t -> bool

val delivered : t -> int
val dropped : t -> int
val bytes_carried : t -> int
