(** Static network description: edge switches, tenants, and host (VM)
    attachment, with support for migration.

    The network core is abstracted away (core–edge separation): all that
    matters to the control plane is which edge switch each host sits
    behind, so a topology is essentially the host-to-switch mapping plus
    tenant ownership, indexed every way the control plane needs. *)

open Lazyctrl_net

type t

val create : n_switches:int -> t
(** Switches are [sw0 .. sw(n-1)], each with underlay endpoint
    {!Ipv4.of_switch_id}. @raise Invalid_argument if [n_switches <= 0]. *)

val n_switches : t -> int
val switches : t -> Ids.Switch_id.t list
val underlay_ip : t -> Ids.Switch_id.t -> Ipv4.t
val switch_of_underlay_ip : t -> Ipv4.t -> Ids.Switch_id.t option

val add_host : t -> Host.t -> at:Ids.Switch_id.t -> unit
(** @raise Invalid_argument if the host id is already present. *)

val n_hosts : t -> int
val hosts : t -> Host.t list
val host : t -> Ids.Host_id.t -> Host.t
(** @raise Not_found *)

val location : t -> Ids.Host_id.t -> Ids.Switch_id.t
(** @raise Not_found *)

val hosts_at : t -> Ids.Switch_id.t -> Host.t list

val migrate : t -> Ids.Host_id.t -> to_:Ids.Switch_id.t -> Ids.Switch_id.t
(** Returns the previous location. @raise Not_found for an unknown host. *)

val remove_host : t -> Ids.Host_id.t -> unit

val tenants : t -> Ids.Tenant_id.t list
val tenant_hosts : t -> Ids.Tenant_id.t -> Host.t list
val tenant_switches : t -> Ids.Tenant_id.t -> Ids.Switch_id.t list
(** Switches currently hosting at least one VM of the tenant. *)

val vlan_of_tenant : Ids.Tenant_id.t -> int
(** Deterministic 802.1Q tag for a tenant (12-bit space, wraps). *)

val find_by_mac : t -> Mac.t -> Host.t option
val find_by_ip : t -> Ipv4.t -> Host.t option
