open Lazyctrl_sim
open Lazyctrl_net

type t = {
  engine : Engine.t;
  latency : Time.t;
  jitter : (unit -> Time.t) option;
  endpoints : (int, Packet.t -> unit) Hashtbl.t;
  failed : (int * int, unit) Hashtbl.t;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable n_bytes : int;
}

let create engine ~latency ?jitter () =
  {
    engine;
    latency;
    jitter;
    endpoints = Hashtbl.create 64;
    failed = Hashtbl.create 8;
    n_delivered = 0;
    n_dropped = 0;
    n_bytes = 0;
  }

let register t ip f = Hashtbl.replace t.endpoints (Ipv4.to_int ip) f

let path_key ~src ~dst = (Ipv4.to_int src, Ipv4.to_int dst)

let fail_path t ~src ~dst = Hashtbl.replace t.failed (path_key ~src ~dst) ()
let repair_path t ~src ~dst = Hashtbl.remove t.failed (path_key ~src ~dst)
let path_up t ~src ~dst = not (Hashtbl.mem t.failed (path_key ~src ~dst))

let send t packet =
  match packet with
  | Packet.Plain _ ->
      t.n_dropped <- t.n_dropped + 1;
      false
  | Packet.Encap { outer_src; outer_dst; _ } -> (
      if not (path_up t ~src:outer_src ~dst:outer_dst) then begin
        t.n_dropped <- t.n_dropped + 1;
        false
      end
      else
        match Hashtbl.find_opt t.endpoints (Ipv4.to_int outer_dst) with
        | None ->
            t.n_dropped <- t.n_dropped + 1;
            false
        | Some deliver ->
            let delay =
              match t.jitter with
              | None -> t.latency
              | Some j -> Time.add t.latency (j ())
            in
            t.n_bytes <- t.n_bytes + Packet.size_on_wire packet;
            ignore
              (Engine.schedule t.engine ~after:delay (fun () ->
                   t.n_delivered <- t.n_delivered + 1;
                   deliver packet));
            true)

let delivered t = t.n_delivered
let dropped t = t.n_dropped
let bytes_carried t = t.n_bytes
