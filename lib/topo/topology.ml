open Lazyctrl_net
module Sid = Ids.Switch_id
module Hid = Ids.Host_id
module Tid = Ids.Tenant_id

type t = {
  n_switches : int;
  hosts : Host.t Hid.Tbl.t;
  location : Sid.t Hid.Tbl.t;
  at_switch : Hid.Set.t ref Sid.Tbl.t;
  by_tenant : Hid.Set.t ref Tid.Tbl.t;
  by_mac : (int, Host.t) Hashtbl.t;
  by_ip : (int, Host.t) Hashtbl.t;
}

let create ~n_switches =
  if n_switches <= 0 then invalid_arg "Topology.create: need at least one switch";
  {
    n_switches;
    hosts = Hid.Tbl.create 256;
    location = Hid.Tbl.create 256;
    at_switch = Sid.Tbl.create n_switches;
    by_tenant = Tid.Tbl.create 16;
    by_mac = Hashtbl.create 256;
    by_ip = Hashtbl.create 256;
  }

let n_switches t = t.n_switches

let switches t = List.init t.n_switches Sid.of_int

let underlay_ip _t sw = Ipv4.of_switch_id (Sid.to_int sw)

let switch_of_underlay_ip t ip =
  let v = Ipv4.to_int ip in
  let base = Ipv4.to_int (Ipv4.of_switch_id 0) in
  let idx = v - base in
  if idx >= 0 && idx < t.n_switches then Some (Sid.of_int idx) else None

let set_find tbl_find tbl key =
  match tbl_find tbl key with
  | Some r -> r
  | None -> assert false

let get_or_create_set find add tbl key =
  match find tbl key with
  | Some r -> r
  | None ->
      let r = ref Hid.Set.empty in
      add tbl key r;
      r

let add_host t (h : Host.t) ~at =
  if Sid.to_int at >= t.n_switches then invalid_arg "Topology.add_host: bad switch";
  if Hid.Tbl.mem t.hosts h.id then invalid_arg "Topology.add_host: duplicate host";
  Hid.Tbl.replace t.hosts h.id h;
  Hid.Tbl.replace t.location h.id at;
  let s = get_or_create_set Sid.Tbl.find_opt Sid.Tbl.replace t.at_switch at in
  s := Hid.Set.add h.id !s;
  let ten = get_or_create_set Tid.Tbl.find_opt Tid.Tbl.replace t.by_tenant h.tenant in
  ten := Hid.Set.add h.id !ten;
  Hashtbl.replace t.by_mac (Mac.to_int h.mac) h;
  Hashtbl.replace t.by_ip (Ipv4.to_int h.ip) h

let n_hosts t = Hid.Tbl.length t.hosts

let hosts t =
  Hid.Tbl.fold (fun _ h acc -> h :: acc) t.hosts []
  |> List.sort Host.compare

let host t id =
  match Hid.Tbl.find_opt t.hosts id with Some h -> h | None -> raise Not_found

let location t id =
  match Hid.Tbl.find_opt t.location id with Some s -> s | None -> raise Not_found

let hosts_at t sw =
  match Sid.Tbl.find_opt t.at_switch sw with
  | None -> []
  | Some s -> Hid.Set.fold (fun id acc -> host t id :: acc) !s [] |> List.rev

let migrate t id ~to_ =
  let prev = location t id in
  if Sid.to_int to_ >= t.n_switches then invalid_arg "Topology.migrate: bad switch";
  let prev_set = set_find Sid.Tbl.find_opt t.at_switch prev in
  prev_set := Hid.Set.remove id !prev_set;
  let next_set = get_or_create_set Sid.Tbl.find_opt Sid.Tbl.replace t.at_switch to_ in
  next_set := Hid.Set.add id !next_set;
  Hid.Tbl.replace t.location id to_;
  prev

let remove_host t id =
  match Hid.Tbl.find_opt t.hosts id with
  | None -> ()
  | Some h ->
      let loc = location t id in
      let s = set_find Sid.Tbl.find_opt t.at_switch loc in
      s := Hid.Set.remove id !s;
      let ten = set_find Tid.Tbl.find_opt t.by_tenant h.tenant in
      ten := Hid.Set.remove id !ten;
      Hashtbl.remove t.by_mac (Mac.to_int h.mac);
      Hashtbl.remove t.by_ip (Ipv4.to_int h.ip);
      Hid.Tbl.remove t.location id;
      Hid.Tbl.remove t.hosts id

let tenants t =
  Tid.Tbl.fold (fun ten s acc -> if Hid.Set.is_empty !s then acc else ten :: acc) t.by_tenant []
  |> List.sort Tid.compare

let tenant_hosts t ten =
  match Tid.Tbl.find_opt t.by_tenant ten with
  | None -> []
  | Some s -> Hid.Set.fold (fun id acc -> host t id :: acc) !s [] |> List.rev

let tenant_switches t ten =
  tenant_hosts t ten
  |> List.map (fun (h : Host.t) -> location t h.id)
  |> List.sort_uniq Sid.compare

let vlan_of_tenant ten = 1 + (Tid.to_int ten mod 4094)

let find_by_mac t mac = Hashtbl.find_opt t.by_mac (Mac.to_int mac)
let find_by_ip t ip = Hashtbl.find_opt t.by_ip (Ipv4.to_int ip)
