open Lazyctrl_net
module Prng = Lazyctrl_util.Prng

type spec = {
  n_switches : int;
  n_tenants : int;
  tenant_size_min : int;
  tenant_size_max : int;
  racks_per_tenant : int;
  stray_fraction : float;
}

let default =
  {
    n_switches = 272;
    n_tenants = 120;
    tenant_size_min = 20;
    tenant_size_max = 100;
    racks_per_tenant = 4;
    stray_fraction = 0.05;
  }

let scaled ~factor spec =
  {
    spec with
    n_switches = spec.n_switches * factor + 1;
    n_tenants = spec.n_tenants * factor;
  }

let tenant_sizes ~rng spec =
  Array.init spec.n_tenants (fun _ ->
      Prng.int_in rng spec.tenant_size_min spec.tenant_size_max)

let host_count spec ~rng =
  Array.fold_left ( + ) 0 (tenant_sizes ~rng spec)

let generate ?(contiguous = true) ~rng spec =
  if spec.racks_per_tenant <= 0 then invalid_arg "Placement: racks_per_tenant <= 0";
  if spec.racks_per_tenant > spec.n_switches then
    invalid_arg "Placement: more home racks than switches";
  let topo = Topology.create ~n_switches:spec.n_switches in
  let sizes = tenant_sizes ~rng spec in
  let next_host = ref 0 in
  Array.iteri
    (fun tenant_idx size ->
      let tenant = Ids.Tenant_id.of_int tenant_idx in
      let homes =
        if contiguous then begin
          (* Allocation locality: a tenant's home racks form a contiguous
             row segment, as placement systems strive for — this is what
             makes edge switches groupable by traffic affinity at all. *)
          let start = Prng.int rng spec.n_switches in
          Array.init spec.racks_per_tenant (fun i ->
              (start + i) mod spec.n_switches)
        end
        else
          Prng.sample_distinct rng ~n:spec.racks_per_tenant
            ~bound:spec.n_switches
          |> Array.of_list
      in
      for _ = 1 to size do
        let sw =
          if Prng.float rng 1.0 < spec.stray_fraction then
            Prng.int rng spec.n_switches
          else Prng.choose rng homes
        in
        let host =
          Host.make ~id:(Ids.Host_id.of_int !next_host) ~tenant
        in
        incr next_host;
        Topology.add_host topo host ~at:(Ids.Switch_id.of_int sw)
      done)
    sizes;
  topo
