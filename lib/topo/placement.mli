(** Multi-tenant VM placement generator.

    Implements the workload assumptions of §II: tenants of modest, stable
    size (20–100 VMs, as reported for EC2 [1]) whose VMs show rack
    affinity — each tenant's VMs are placed on a small set of "home"
    switches with occasional strays, which is what makes switch grouping
    by traffic locality effective. *)


type spec = {
  n_switches : int;
  n_tenants : int;
  tenant_size_min : int;   (** inclusive *)
  tenant_size_max : int;   (** inclusive *)
  racks_per_tenant : int;  (** home switches per tenant *)
  stray_fraction : float;  (** fraction of VMs placed off the home racks *)
}

val default : spec
(** 272 switches, 120 tenants of 20–100 VMs on 4 home racks, 5% strays —
    calibrated to the paper's real-trace scale (~6.5k hosts). *)

val scaled : factor:int -> spec -> spec
(** Multiply switch and tenant counts (the paper's ×10 synthetic scale-up:
    2713 switches is [scaled ~factor:10] of 272 rounded up by one). *)

val generate :
  ?contiguous:bool -> rng:Lazyctrl_util.Prng.t -> spec -> Topology.t
(** Host ids are dense in [0..n-1]; tenant ids dense in
    [0..n_tenants-1]. With [contiguous] (the default), each tenant's home
    racks are a contiguous segment of the switch row — the allocation
    locality placement systems aim for, without which switch-level
    traffic affinity (and hence grouping) largely disappears. *)

val host_count : spec -> rng:Lazyctrl_util.Prng.t -> int
(** Expected host count for a spec under the given stream (consumes the
    same draws as [generate] does for sizing; used by tests). *)
