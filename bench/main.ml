(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md §4 for the index), plus Bechamel micro-benchmarks of the
   hot primitives.

   Usage:  dune exec bench/main.exe              (run everything)
           dune exec bench/main.exe -- fig7      (one target)
           dune exec bench/main.exe -- --list    (list targets)

   Scale: packet-level experiments run on the quarter-scale topology with
   sampled-down flow counts (documented in EXPERIMENTS.md); grouping
   experiments run at paper scale. *)

module E = Lazyctrl_experiments
module Table = Lazyctrl_util.Table

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let quick = ref false

let t_table2 () =
  section "Table II — traffic trace characteristics";
  let n_real = if !quick then 60_000 else 271_000 in
  let n_syn = if !quick then 100_000 else 400_000 in
  Table.print (E.Grouping_exp.table2 ~n_flows_real:n_real ~n_flows_syn:n_syn ());
  print_endline
    "(paper: Real 271M flows 0.85 | Syn-A 2720M 0.85 | Syn-B 3806M 0.72 | Syn-C 5071M 0.61;\n\
    \ flow counts here are sampled down, centrality/skew are scale-free)"

let t_fig6a () =
  section "Fig. 6(a) — normalized inter-group traffic intensity vs #groups";
  let n_syn = if !quick then 100_000 else 400_000 in
  Table.print (E.Grouping_exp.fig6a ~n_flows_syn:n_syn ());
  print_endline
    "(paper: rises ~linearly with #groups; Syn-A lowest, Syn-C highest, ~5%-50% band)"

let t_fig6b () =
  section "Fig. 6(b) — grouping computation time vs group size limit";
  let n_syn = if !quick then 100_000 else 400_000 in
  Table.print (E.Grouping_exp.fig6b ~n_flows_syn:n_syn ());
  print_endline
    "(paper: < 5 s, decreasing with larger size limit; IncUpdate >= 10x faster than IniGroup)"

let daylong_flows () = if !quick then 30_000 else 120_000

let t_fig7 () =
  section "Fig. 7 — controller workload (requests/s per 2-hour bucket)";
  Table.print (E.Daylong.fig7_table ~n_flows:(daylong_flows ()) ());
  Printf.printf
    "Overall workload reduction, LazyCtrl (real, dynamic) vs OpenFlow: %.1f%%\n"
    (100.0 *. E.Daylong.workload_reduction ~n_flows:(daylong_flows ()) ());
  print_endline "(paper: 61%-82% reduction; LazyCtrl stable across the day on the real trace)"

let t_fig8 () =
  section "Fig. 8 — switch grouping updates per hour";
  Table.print (E.Daylong.fig8_table ~n_flows:(daylong_flows ()) ());
  print_endline "(paper: ~10/hour on the real trace; up to 34/hour on the expanded trace)"

let t_fig9 () =
  section "Fig. 9 — steady-state average forwarding latency (ms per 2-hour bucket)";
  Table.print (E.Daylong.fig9_table ~n_flows:(daylong_flows ()) ());
  print_endline "(paper: LazyCtrl ~10% below OpenFlow, both in the 0.4-0.7 ms band)"

let t_table1 () =
  section "Table I — failure inference (pure lookup)";
  Table.print (E.Failover_exp.inference_table ());
  section "Table I — failure inference (end-to-end injection)";
  Table.print (E.Failover_exp.endtoend_table ())

let t_chaos () =
  section "Chaos sweep — loss rate x state-delivery mode (robustness)";
  Table.print
    (E.Chaos_exp.table ?losses:(if !quick then Some [ 0.0; 0.05 ] else None) ());
  print_endline
    "(reliable rows must converge with all invariants green; fire-and-forget\n\
    \ rows show the stale-state window the reliable layer removes)"

let t_coldcache () =
  section "Cold-cache first-packet latency (§V-E)";
  Table.print (E.Coldcache.table ())

let t_storage () =
  section "G-FIB storage overhead and false-positive rate (§V-D)";
  Table.print (E.Storage_exp.table ())

let t_ablate_size () =
  section "Ablation A2 — group size limit sweep";
  Table.print (E.Ablation.group_size_table ~n_flows:(if !quick then 15_000 else 40_000) ());
  section "Ablation A2 — Rubinstein group-size negotiation (Appendix C)";
  Table.print (E.Ablation.negotiation_table ())

let t_ablate_bloom () =
  section "Ablation A3 — Bloom filter sizing sweep";
  Table.print (E.Ablation.bloom_table ~n_flows:(if !quick then 15_000 else 40_000) ())

let t_ablate_appendix () =
  section "Ablation A4 — Appendix B: seamless-update preloading";
  Table.print (E.Ablation.preload_table ~n_flows:(if !quick then 15_000 else 40_000) ());
  section "Ablation A5 — Appendix B: host exclusion from grouping";
  Table.print
    (E.Ablation.exclusion_table ~n_flows:(if !quick then 60_000 else 150_000) ());
  section "Ablation A6 — Appendix B: batched/parallel IncUpdate";
  Table.print (E.Ablation.batch_table ~n_flows:(if !quick then 80_000 else 200_000) ())

(* --- micro-benchmarks ------------------------------------------------------ *)

let t_micro () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let rng = Lazyctrl_util.Prng.create 7 in
  let bloom = Lazyctrl_bloom.Bloom.create ~bits:65536 () in
  for i = 0 to 4095 do
    Lazyctrl_bloom.Bloom.add bloom i
  done;
  let test_bloom_mem =
    Test.make ~name:"bloom.mem"
      (Staged.stage (fun () ->
           ignore (Lazyctrl_bloom.Bloom.mem bloom (Lazyctrl_util.Prng.int rng 100000))))
  in
  let lfib = Lazyctrl_switch.Lfib.create () in
  for i = 0 to 63 do
    ignore
      (Lazyctrl_switch.Lfib.learn lfib
         (Lazyctrl_net.Host.make
            ~id:(Lazyctrl_net.Ids.Host_id.of_int i)
            ~tenant:(Lazyctrl_net.Ids.Tenant_id.of_int 0)))
  done;
  let test_lfib =
    Test.make ~name:"lfib.lookup_mac"
      (Staged.stage (fun () ->
           ignore
             (Lazyctrl_switch.Lfib.lookup_mac lfib
                (Lazyctrl_net.Mac.of_host_id (Lazyctrl_util.Prng.int rng 128)))))
  in
  let graph =
    (* A 512-vertex random community graph for the partitioner. *)
    let b = Lazyctrl_graph.Wgraph.Builder.create ~n:512 in
    for _ = 1 to 4096 do
      let u = Lazyctrl_util.Prng.int rng 512 in
      let v = (u + 1 + Lazyctrl_util.Prng.int rng 31) mod 512 in
      Lazyctrl_graph.Wgraph.Builder.add_edge b u v
        (Lazyctrl_util.Prng.float rng 10.0)
    done;
    Lazyctrl_graph.Wgraph.Builder.build b
  in
  let test_partition =
    Test.make ~name:"partition.multilevel_kway(512v,k=8)"
      (Staged.stage (fun () ->
           ignore
             (Lazyctrl_graph.Partition.multilevel_kway
                ~rng:(Lazyctrl_util.Prng.create 11) ~k:8 graph)))
  in
  let table = Lazyctrl_openflow.Flow_table.create () in
  let host i =
    Lazyctrl_net.Host.make
      ~id:(Lazyctrl_net.Ids.Host_id.of_int i)
      ~tenant:(Lazyctrl_net.Ids.Tenant_id.of_int 0)
  in
  let now = Lazyctrl_sim.Time.zero in
  for i = 0 to 255 do
    Lazyctrl_openflow.Flow_table.install table ~now
      {
        Lazyctrl_openflow.Flow_table.priority = 10;
        ofmatch =
          Lazyctrl_openflow.Ofmatch.exact_pair
            ~src:(host i).Lazyctrl_net.Host.mac
            ~dst:(host (i + 1)).Lazyctrl_net.Host.mac;
        actions = [ Lazyctrl_openflow.Action.Drop ];
        idle_timeout = None;
        hard_timeout = None;
        cookie = 0;
      }
  done;
  let probe =
    Lazyctrl_net.Packet.eth_of
      (Lazyctrl_net.Packet.data ~src:(host 10) ~dst:(host 11) ~length:100 ())
  in
  let test_flow_table =
    Test.make ~name:"flow_table.lookup(256 rules)"
      (Staged.stage (fun () ->
           ignore (Lazyctrl_openflow.Flow_table.lookup table ~now probe)))
  in
  let tests =
    Test.make_grouped ~name:"lazyctrl"
      [ test_bloom_mem; test_lfib; test_partition; test_flow_table ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  let results = benchmark () in
  (* Collect and sort by benchmark name so the report order is stable. *)
  let rows =
    Lazyctrl_util.Det.fold_sorted ~cmp:String.compare
      (fun _ tbl acc ->
        Lazyctrl_util.Det.fold_sorted ~cmp:String.compare
          (fun name result acc -> (name, result) :: acc)
          tbl acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-44s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-44s (no estimate)\n" name)
    rows

(* --- driver ----------------------------------------------------------------- *)

let targets =
  [
    ("table2", t_table2);
    ("fig6a", t_fig6a);
    ("fig6b", t_fig6b);
    ("fig7", t_fig7);
    ("fig8", t_fig8);
    ("fig9", t_fig9);
    ("table1", t_table1);
    ("chaos", t_chaos);
    ("coldcache", t_coldcache);
    ("storage", t_storage);
    ("ablate-size", t_ablate_size);
    ("ablate-bloom", t_ablate_bloom);
    ("ablate-appendix", t_ablate_appendix);
    ("micro", t_micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  match args with
  | [ "--list" ] ->
      List.iter (fun (name, _) -> print_endline name) targets
  | [] ->
      print_endline "LazyCtrl experiment suite (all targets; use --list to see them)";
      List.iter (fun (_, f) -> f ()) targets
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown target %S (use --list)\n" name;
              exit 1)
        names
