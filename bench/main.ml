(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md §4 for the index), plus Bechamel micro-benchmarks of the
   hot primitives.

   Usage:  dune exec bench/main.exe              (run everything)
           dune exec bench/main.exe -- fig7      (one target)
           dune exec bench/main.exe -- --list    (list targets)

   Scale: packet-level experiments run on the quarter-scale topology with
   sampled-down flow counts (documented in EXPERIMENTS.md); grouping
   experiments run at paper scale. *)

module E = Lazyctrl_experiments
module Table = Lazyctrl_util.Table
module Perf = Lazyctrl_perf

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let quick = ref false

let t_table2 () =
  section "Table II — traffic trace characteristics";
  let n_real = if !quick then 60_000 else 271_000 in
  let n_syn = if !quick then 100_000 else 400_000 in
  Table.print (E.Grouping_exp.table2 ~n_flows_real:n_real ~n_flows_syn:n_syn ());
  print_endline
    "(paper: Real 271M flows 0.85 | Syn-A 2720M 0.85 | Syn-B 3806M 0.72 | Syn-C 5071M 0.61;\n\
    \ flow counts here are sampled down, centrality/skew are scale-free)"

let t_fig6a () =
  section "Fig. 6(a) — normalized inter-group traffic intensity vs #groups";
  let n_syn = if !quick then 100_000 else 400_000 in
  Table.print (E.Grouping_exp.fig6a ~n_flows_syn:n_syn ());
  print_endline
    "(paper: rises ~linearly with #groups; Syn-A lowest, Syn-C highest, ~5%-50% band)"

let t_fig6b () =
  section "Fig. 6(b) — grouping computation time vs group size limit";
  let n_syn = if !quick then 100_000 else 400_000 in
  Table.print (E.Grouping_exp.fig6b ~n_flows_syn:n_syn ());
  print_endline
    "(paper: < 5 s, decreasing with larger size limit; IncUpdate >= 10x faster than IniGroup)"

let daylong_flows () = if !quick then 30_000 else 120_000

let t_fig7 () =
  section "Fig. 7 — controller workload (requests/s per 2-hour bucket)";
  Table.print (E.Daylong.fig7_table ~n_flows:(daylong_flows ()) ());
  Printf.printf
    "Overall workload reduction, LazyCtrl (real, dynamic) vs OpenFlow: %.1f%%\n"
    (100.0 *. E.Daylong.workload_reduction ~n_flows:(daylong_flows ()) ());
  print_endline "(paper: 61%-82% reduction; LazyCtrl stable across the day on the real trace)"

let t_fig7_bytes () =
  section "Fig. 7 in real units — control-channel load (bytes/s per 2-hour bucket)";
  Table.print (E.Daylong.fig7_bytes_table ~n_flows:(daylong_flows ()) ());
  Printf.printf
    "Overall control-byte reduction, LazyCtrl (real, dynamic) vs OpenFlow: %.1f%%\n"
    (100.0 *. E.Daylong.ctrl_bytes_reduction ~n_flows:(daylong_flows ()) ());
  print_endline
    "(encoded DESIGN.md-13 frames on controller-facing channels; the paper reports requests/s only)"

let t_fig8 () =
  section "Fig. 8 — switch grouping updates per hour";
  Table.print (E.Daylong.fig8_table ~n_flows:(daylong_flows ()) ());
  print_endline "(paper: ~10/hour on the real trace; up to 34/hour on the expanded trace)"

let t_fig9 () =
  section "Fig. 9 — steady-state average forwarding latency (ms per 2-hour bucket)";
  Table.print (E.Daylong.fig9_table ~n_flows:(daylong_flows ()) ());
  print_endline "(paper: LazyCtrl ~10% below OpenFlow, both in the 0.4-0.7 ms band)"

let t_table1 () =
  section "Table I — failure inference (pure lookup)";
  Table.print (E.Failover_exp.inference_table ());
  section "Table I — failure inference (end-to-end injection)";
  Table.print (E.Failover_exp.endtoend_table ())

let t_chaos () =
  section "Chaos sweep — loss rate x state-delivery mode (robustness)";
  Table.print
    (E.Chaos_exp.table ?losses:(if !quick then Some [ 0.0; 0.05 ] else None) ());
  print_endline
    "(reliable rows must converge with all invariants green; fire-and-forget\n\
    \ rows show the stale-state window the reliable layer removes)"

let t_coldcache () =
  section "Cold-cache first-packet latency (§V-E)";
  Table.print (E.Coldcache.table ())

let t_storage () =
  section "G-FIB storage overhead and false-positive rate (§V-D)";
  Table.print (E.Storage_exp.table ())

let t_ablate_size () =
  section "Ablation A2 — group size limit sweep";
  Table.print (E.Ablation.group_size_table ~n_flows:(if !quick then 15_000 else 40_000) ());
  section "Ablation A2 — Rubinstein group-size negotiation (Appendix C)";
  Table.print (E.Ablation.negotiation_table ())

let t_ablate_bloom () =
  section "Ablation A3 — Bloom filter sizing sweep";
  Table.print (E.Ablation.bloom_table ~n_flows:(if !quick then 15_000 else 40_000) ())

let t_ablate_appendix () =
  section "Ablation A4 — Appendix B: seamless-update preloading";
  Table.print (E.Ablation.preload_table ~n_flows:(if !quick then 15_000 else 40_000) ());
  section "Ablation A5 — Appendix B: host exclusion from grouping";
  Table.print
    (E.Ablation.exclusion_table ~n_flows:(if !quick then 60_000 else 150_000) ());
  section "Ablation A6 — Appendix B: batched/parallel IncUpdate";
  Table.print (E.Ablation.batch_table ~n_flows:(if !quick then 80_000 else 200_000) ())

(* --- micro-benchmarks ------------------------------------------------------ *)

let t_micro () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let rng = Lazyctrl_util.Prng.create 7 in
  let bloom = Lazyctrl_bloom.Bloom.create ~bits:65536 () in
  for i = 0 to 4095 do
    Lazyctrl_bloom.Bloom.add bloom i
  done;
  let test_bloom_mem =
    Test.make ~name:"bloom.mem"
      (Staged.stage (fun () ->
           ignore (Lazyctrl_bloom.Bloom.mem bloom (Lazyctrl_util.Prng.int rng 100000))))
  in
  let lfib = Lazyctrl_switch.Lfib.create () in
  for i = 0 to 63 do
    ignore
      (Lazyctrl_switch.Lfib.learn lfib
         (Lazyctrl_net.Host.make
            ~id:(Lazyctrl_net.Ids.Host_id.of_int i)
            ~tenant:(Lazyctrl_net.Ids.Tenant_id.of_int 0)))
  done;
  let test_lfib =
    Test.make ~name:"lfib.lookup_mac"
      (Staged.stage (fun () ->
           ignore
             (Lazyctrl_switch.Lfib.lookup_mac lfib
                (Lazyctrl_net.Mac.of_host_id (Lazyctrl_util.Prng.int rng 128)))))
  in
  let graph =
    (* A 512-vertex random community graph for the partitioner. *)
    let b = Lazyctrl_graph.Wgraph.Builder.create ~n:512 in
    for _ = 1 to 4096 do
      let u = Lazyctrl_util.Prng.int rng 512 in
      let v = (u + 1 + Lazyctrl_util.Prng.int rng 31) mod 512 in
      Lazyctrl_graph.Wgraph.Builder.add_edge b u v
        (Lazyctrl_util.Prng.float rng 10.0)
    done;
    Lazyctrl_graph.Wgraph.Builder.build b
  in
  let test_partition =
    Test.make ~name:"partition.multilevel_kway(512v,k=8)"
      (Staged.stage (fun () ->
           ignore
             (Lazyctrl_graph.Partition.multilevel_kway
                ~rng:(Lazyctrl_util.Prng.create 11) ~k:8 graph)))
  in
  let table = Lazyctrl_openflow.Flow_table.create () in
  let host i =
    Lazyctrl_net.Host.make
      ~id:(Lazyctrl_net.Ids.Host_id.of_int i)
      ~tenant:(Lazyctrl_net.Ids.Tenant_id.of_int 0)
  in
  let now = Lazyctrl_sim.Time.zero in
  for i = 0 to 255 do
    Lazyctrl_openflow.Flow_table.install table ~now
      {
        Lazyctrl_openflow.Flow_table.priority = 10;
        ofmatch =
          Lazyctrl_openflow.Ofmatch.exact_pair
            ~src:(host i).Lazyctrl_net.Host.mac
            ~dst:(host (i + 1)).Lazyctrl_net.Host.mac;
        actions = [ Lazyctrl_openflow.Action.Drop ];
        idle_timeout = None;
        hard_timeout = None;
        cookie = 0;
      }
  done;
  let probe =
    Lazyctrl_net.Packet.eth_of
      (Lazyctrl_net.Packet.data ~src:(host 10) ~dst:(host 11) ~length:100 ())
  in
  let test_flow_table =
    Test.make ~name:"flow_table.lookup(256 rules)"
      (Staged.stage (fun () ->
           ignore (Lazyctrl_openflow.Flow_table.lookup table ~now probe)))
  in
  let tests =
    Test.make_grouped ~name:"lazyctrl"
      [ test_bloom_mem; test_lfib; test_partition; test_flow_table ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  let results = benchmark () in
  (* Collect and sort by benchmark name so the report order is stable. *)
  let rows =
    Lazyctrl_util.Det.fold_sorted ~cmp:String.compare
      (fun _ tbl acc ->
        Lazyctrl_util.Det.fold_sorted ~cmp:String.compare
          (fun name result acc -> (name, result) :: acc)
          tbl acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-44s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-44s (no estimate)\n" name)
    rows

(* --- perf regression targets ------------------------------------------------ *)

(* Fixed-work benchmarks of the simulator's hot primitives, measured by
   lib/perf and emitted as schema-versioned JSON with --json (the
   regression gate behind `make bench-check`).  Each target does the
   same deterministic work every run; only the wall time varies. *)

let perf_results : Perf.Measure.result list ref = ref []

let perf_record r =
  perf_results := r :: !perf_results;
  Format.printf "%a@." Perf.Measure.pp_row r

let perf_scale n = if !quick then max 1 (n / 4) else n

let perf_reps () = if !quick then 3 else 5

(* engine-event: schedule/fire throughput of Sim.Engine, including a
   recurrence timer and nested reschedules — the patterns every
   simulated switch and controller timer goes through. *)
let perf_engine_event () =
  let module Engine = Lazyctrl_sim.Engine in
  let module Time = Lazyctrl_sim.Time in
  let n = perf_scale 200_000 in
  let delays =
    let rng = Lazyctrl_util.Prng.create 17 in
    Array.init n (fun _ -> Time.of_ns (Lazyctrl_util.Prng.int rng 1_000_000))
  in
  let fired = ref 0 in
  let workload () =
    let e = Engine.create () in
    let tick = Engine.every e ~period:(Time.of_us 10) (fun () -> ()) in
    let count = ref 0 in
    Array.iter
      (fun d ->
        ignore
          (Engine.schedule e ~after:d (fun () ->
               incr count;
               (* every 8th event reschedules, as protocol handlers do *)
               if !count land 7 = 0 then
                 ignore (Engine.schedule e ~after:d (fun () -> ())))))
      delays;
    Engine.run e ~until:(Time.of_ms 2);
    Engine.cancel e tick;
    Engine.run e;
    fired := Engine.events_processed e
  in
  perf_record
    (Perf.Measure.run ~name:"engine-event" ~reps:(perf_reps ()) ~ops_per_rep:n
       ~events:(fun () -> !fired)
       workload)

(* bloom-query: membership probes on a G-FIB-sized plain filter, mixed
   hits and misses.  [name] lets the hotpath suite reuse the same
   steady-state workload under its probe id. *)
let perf_bloom_query ?(name = "bloom-query") () =
  let module Bloom = Lazyctrl_bloom.Bloom in
  let n_probes = perf_scale 400_000 in
  let bloom = Bloom.create ~bits:(128 * 1024) () in
  for i = 0 to 8191 do
    Bloom.add bloom (i * 7919)
  done;
  let keys =
    let rng = Lazyctrl_util.Prng.create 23 in
    (* ~half present, half absent *)
    Array.init 65_536 (fun _ ->
        if Lazyctrl_util.Prng.int rng 2 = 0 then
          Lazyctrl_util.Prng.int rng 8192 * 7919
        else 1 + Lazyctrl_util.Prng.int rng 100_000_000)
  in
  let mask = Array.length keys - 1 in
  let sink = ref 0 in
  let workload () =
    for i = 0 to n_probes - 1 do
      if Bloom.mem bloom (Array.unsafe_get keys (i land mask)) then incr sink
    done
  in
  perf_record
    (Perf.Measure.run ~name ~reps:(perf_reps ()) ~ops_per_rep:n_probes
       workload);
  ignore !sink

(* lfib-lookup: the switch's local fast path — MAC lookups against a
   64-host L-FIB, mixed local and remote destinations. *)
let perf_lfib_lookup ?(name = "lfib-lookup") () =
  let module Lfib = Lazyctrl_switch.Lfib in
  let n_lookups = perf_scale 400_000 in
  let lfib = Lfib.create () in
  for i = 0 to 63 do
    ignore
      (Lfib.learn lfib
         (Lazyctrl_net.Host.make
            ~id:(Lazyctrl_net.Ids.Host_id.of_int i)
            ~tenant:(Lazyctrl_net.Ids.Tenant_id.of_int 0)))
  done;
  let macs =
    let rng = Lazyctrl_util.Prng.create 29 in
    Array.init 4096 (fun _ ->
        Lazyctrl_net.Mac.of_host_id (Lazyctrl_util.Prng.int rng 128))
  in
  let mask = Array.length macs - 1 in
  let sink = ref 0 in
  let workload () =
    for i = 0 to n_lookups - 1 do
      match Lfib.lookup_mac lfib (Array.unsafe_get macs (i land mask)) with
      | Some _ -> incr sink
      | None -> ()
    done
  in
  perf_record
    (Perf.Measure.run ~name ~reps:(perf_reps ()) ~ops_per_rep:n_lookups
       workload);
  ignore !sink

(* gfib-probe: the intra-group miss path — probe every peer filter of
   an 8-member group for a destination MAC and visit the candidates. *)
let perf_gfib_probe ?(name = "gfib-probe") () =
  let module Gfib = Lazyctrl_switch.Gfib in
  let n_probes = perf_scale 200_000 in
  let gfib = Gfib.create ~bits_per_entry:128 ~expected_hosts_per_switch:64 () in
  for peer = 1 to 8 do
    let keys =
      List.init 64 (fun i ->
          let hid = (peer * 1000) + i in
          {
            Lazyctrl_switch.Proto.mac = Lazyctrl_net.Mac.of_host_id hid;
            ip = Lazyctrl_net.Ipv4.of_host_id hid;
            tenant = Lazyctrl_net.Ids.Tenant_id.of_int 0;
          })
    in
    Gfib.set_peer gfib (Lazyctrl_net.Ids.Switch_id.of_int peer) keys
  done;
  let macs =
    let rng = Lazyctrl_util.Prng.create 31 in
    Array.init 4096 (fun _ ->
        let peer = 1 + Lazyctrl_util.Prng.int rng 8 in
        let i = Lazyctrl_util.Prng.int rng 96 (* 1/3 misses *) in
        Lazyctrl_net.Mac.of_host_id ((peer * 1000) + i))
  in
  let mask = Array.length macs - 1 in
  let sink = ref 0 in
  let workload () =
    for i = 0 to n_probes - 1 do
      let mac = Array.unsafe_get macs (i land mask) in
      sink :=
        !sink + Gfib.iter_candidates_mac gfib mac (fun _ -> ())
    done
  in
  perf_record
    (Perf.Measure.run ~name ~reps:(perf_reps ()) ~ops_per_rep:n_probes
       workload);
  ignore !sink

(* packet-replay: end-to-end — a small lazy-mode network, per-tenant
   traffic, everything from ARP resolution through G-FIB encap to
   delivery.  Ops are delivered packets; events are engine firings. *)
let replay_scenario ?tracer () =
  let module Time = Lazyctrl_sim.Time in
  let module Network = Lazyctrl_core.Network in
  let module Placement = Lazyctrl_topo.Placement in
  let module Topology = Lazyctrl_topo.Topology in
  let packets_per_flow = if !quick then 6 else 12 in
  let topo =
    Placement.generate
      ~rng:(Lazyctrl_util.Prng.create 5)
      {
        Placement.n_switches = 8;
        n_tenants = 4;
        tenant_size_min = 6;
        tenant_size_max = 10;
        racks_per_tenant = 2;
        stray_fraction = 0.1;
      }
  in
  let net =
    Network.create ?tracer ~mode:Network.Lazy ~topo ~horizon:(Time.of_min 5) ()
  in
  Network.bootstrap net ();
  Network.run net ~until:(Time.of_sec 10);
  List.iter
    (fun tenant ->
      match Topology.tenant_hosts topo tenant with
      | first :: rest ->
          List.iter
            (fun (peer : Lazyctrl_net.Host.t) ->
              Network.start_flow net ~src:first.Lazyctrl_net.Host.id
                ~dst:peer.id ~bytes:20_000 ~packets:packets_per_flow)
            rest
      | [] -> ())
    (Topology.tenants topo);
  Network.run net ~until:(Time.of_min 3);
  net

let perf_packet_replay () =
  let module Network = Lazyctrl_core.Network in
  let run_scenario () = replay_scenario () in
  (* The scenario is deterministic: size the op count from a dry run. *)
  let probe = run_scenario () in
  let delivered =
    (Network.switch_stats_sum probe).Lazyctrl_switch.Edge_switch
    .packets_delivered
  in
  let events = ref 0 in
  let workload () =
    let net = run_scenario () in
    events := Lazyctrl_sim.Engine.events_processed (Network.engine net)
  in
  perf_record
    (* The dry sizing run above doubles as the warmup; replay is the
       noisiest target (one rep is a whole scenario, tens of ms), so
       even --quick takes best-of-4. *)
    (Perf.Measure.run ~name:"packet-replay" ~warmup:0
       ~reps:(if !quick then 4 else 5)
       ~ops_per_rep:(max 1 delivered)
       ~events:(fun () -> !events)
       workload)

(* packet-replay-dN: the packet-replay scenario on the domain-parallel
   sharded engine (Shard_net) at 1, 2 and 4 domains.  The logical
   shard count is fixed (4), so all three runs execute the identical
   event schedule — the probe checks their fingerprints are
   byte-identical before timing anything, then reports the d2/d4 rows
   with scaling_efficiency = ops_dN / (N * ops_d1) for the Compare
   scaling gate (floor 2.5x at 4 domains, gated only on hosts with
   enough cores).  Exchange statistics from the verification runs are
   emitted via --exchange-json for the CI artifact. *)
let shard_replay_scenario ~domains () =
  let module Time = Lazyctrl_sim.Time in
  let module Shard_net = Lazyctrl_core.Shard_net in
  let module Placement = Lazyctrl_topo.Placement in
  let module Topology = Lazyctrl_topo.Topology in
  let packets_per_flow = if !quick then 6 else 12 in
  let topo =
    Placement.generate
      ~rng:(Lazyctrl_util.Prng.create 5)
      {
        Placement.n_switches = 8;
        n_tenants = 4;
        tenant_size_min = 6;
        tenant_size_max = 10;
        racks_per_tenant = 2;
        stray_fraction = 0.1;
      }
  in
  let net = Shard_net.create ~domains ~topo ~horizon:(Time.of_min 5) () in
  Shard_net.bootstrap net;
  Shard_net.run net ~until:(Time.of_sec 10);
  List.iter
    (fun tenant ->
      match Topology.tenant_hosts topo tenant with
      | first :: rest ->
          List.iter
            (fun (peer : Lazyctrl_net.Host.t) ->
              Shard_net.start_flow net ~src:first.Lazyctrl_net.Host.id
                ~dst:peer.id ~bytes:20_000 ~packets:packets_per_flow)
            rest
      | [] -> ())
    (Topology.tenants topo);
  Shard_net.run net ~until:(Time.of_min 3);
  net

let exchange_stats : (int * Lazyctrl_sim.Shard_engine.stats) list ref = ref []

let perf_shard_replay () =
  let module Shard_net = Lazyctrl_core.Shard_net in
  let domain_counts = [ 1; 2; 4 ] in
  (* One verification run per domain count: fingerprints must agree
     byte-for-byte before throughput means anything.  These runs also
     double as warmup, size the op count, and feed --exchange-json. *)
  let verify =
    List.map
      (fun domains ->
        let net = shard_replay_scenario ~domains () in
        let fp = Shard_net.fingerprint net in
        let delivered =
          (Shard_net.switch_stats_sum net).Lazyctrl_switch.Edge_switch
            .packets_delivered
        in
        exchange_stats :=
          (domains, (Shard_net.stats net).Shard_net.engine) :: !exchange_stats;
        Shard_net.shutdown net;
        (domains, fp, delivered))
      domain_counts
  in
  let _, fp1, delivered = List.hd verify in
  List.iter
    (fun (domains, fp, _) ->
      if not (String.equal fp fp1) then begin
        Printf.eprintf
          "packet-replay-d%d: fingerprint diverges from the 1-domain run\n"
          domains;
        exit 1
      end)
    verify;
  Printf.printf
    "fingerprints byte-identical across %s domains (%d packets delivered)\n"
    (String.concat "/" (List.map string_of_int domain_counts))
    delivered;
  let measure domains =
    let events = ref 0 in
    Perf.Measure.run
      ~name:(Printf.sprintf "packet-replay-d%d" domains)
      ~warmup:0 ~domains
      ~reps:(if !quick then 4 else 5)
      ~ops_per_rep:(max 1 delivered)
      ~events:(fun () -> !events)
      (fun () ->
        let net = shard_replay_scenario ~domains () in
        events := (Shard_net.stats net).Shard_net.engine.Lazyctrl_sim.Shard_engine.events;
        Shard_net.shutdown net)
  in
  let d1 = measure 1 in
  perf_record d1;
  List.iter
    (fun domains ->
      let r = measure domains in
      let efficiency =
        r.Perf.Measure.ops_per_sec
        /. (float_of_int domains *. d1.Perf.Measure.ops_per_sec)
      in
      perf_record (Perf.Measure.with_scaling r ~efficiency))
    (List.filter (fun d -> d > 1) domain_counts)

let write_exchange_json path =
  let module SE = Lazyctrl_sim.Shard_engine in
  let module J = Perf.Json in
  let entry (domains, (st : SE.stats)) =
    J.Obj
      [
        ("domains", J.Num (float_of_int domains));
        ("shards", J.Num (float_of_int st.SE.shards));
        ("windows", J.Num (float_of_int st.SE.windows));
        ("messages", J.Num (float_of_int st.SE.messages));
        ("max_window_batch", J.Num (float_of_int st.SE.max_window_batch));
        ("events", J.Num (float_of_int st.SE.events));
        ( "pair_counts",
          J.List
            (Array.to_list
               (Array.map
                  (fun row ->
                    J.List
                      (Array.to_list
                         (Array.map (fun c -> J.Num (float_of_int c)) row)))
                  st.SE.pair_counts)) );
      ]
  in
  let doc =
    J.Obj
      [
        ("suite", J.Str "lazyctrl-shard-exchange");
        ("host_cores", J.Num (float_of_int (Perf.Report.detected_host_cores ())));
        ("runs", J.List (List.map entry (List.rev !exchange_stats)));
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (J.to_string doc));
  Printf.printf "wrote %s (%d runs)\n" path (List.length !exchange_stats)

(* trace-overhead: the packet-replay scenario with the flight recorder
   left disabled (the guard cost every untraced run pays — this row
   feeds the JSON regression gate, so `make bench-check` holds it to
   the same threshold as packet-replay against the pre-tracing
   baseline) and again with an enabled tracer recording every decision
   point, reported as a ratio. *)
let perf_trace_overhead () =
  let module Tracer = Lazyctrl_trace.Tracer in
  let module Network = Lazyctrl_core.Network in
  let probe = replay_scenario () in
  let delivered =
    (Network.switch_stats_sum probe).Lazyctrl_switch.Edge_switch
    .packets_delivered
  in
  let reps = if !quick then 4 else 5 in
  let off =
    Perf.Measure.run ~name:"trace-overhead" ~warmup:0 ~reps
      ~ops_per_rep:(max 1 delivered)
      (fun () -> ignore (replay_scenario ()))
  in
  perf_record off;
  let recorded = ref 0 in
  (* One tracer across reps: the ring allocation is a per-process cost,
     not a per-run one, and the counters are cumulative anyway. *)
  let tracer = Tracer.create () in
  let on =
    Perf.Measure.run ~name:"trace-overhead-on" ~warmup:0 ~reps
      ~ops_per_rep:(max 1 delivered)
      (fun () ->
        let before = Tracer.recorded tracer in
        ignore (replay_scenario ~tracer ());
        recorded := Tracer.recorded tracer - before)
  in
  perf_record on;
  Printf.printf
    "tracing enabled costs %.1f%% over disabled (%d events recorded/run)\n"
    (100. *. ((off.Perf.Measure.ops_per_sec /. on.Perf.Measure.ops_per_sec) -. 1.))
    !recorded

(* cluster-migration: end-to-end controller-cluster failover — a
   3-member cluster absorbs a controller kill mid-run (slave-spoke
   probes, adoption, Rehome handshake, miss-buffer drain, EASM
   failback) while tenant flows keep flowing.  One rep is the whole
   seeded scenario; ops are delivered packets, so the rate prices the
   coordination overhead against useful data-plane work. *)
let perf_cluster_migration () =
  let module Chaos_runner = Lazyctrl_cluster.Chaos_runner in
  let module Scenario = Lazyctrl_chaos.Scenario in
  let module Fault = Lazyctrl_chaos.Fault in
  let cfg =
    let base = Chaos_runner.default_config in
    {
      base with
      Chaos_runner.loss = 0.0;
      dup = 0.0;
      n_switches = (if !quick then 10 else 16);
      spec =
        {
          base.Chaos_runner.spec with
          Scenario.kinds = [ Fault.Controller_kill ];
          n_faults = 1;
        };
    }
  in
  (* The scenario is deterministic: size the op count from a dry run,
     which doubles as the warmup. *)
  let probe = Chaos_runner.run cfg in
  let ops =
    max 1
      probe.Chaos_runner.switch_stats
        .Lazyctrl_switch.Edge_switch.packets_delivered
  in
  perf_record
    (Perf.Measure.run ~name:"cluster-migration" ~warmup:0
       ~reps:(if !quick then 3 else 4)
       ~ops_per_rep:ops
       (fun () -> ignore (Chaos_runner.run cfg)))

(* --- hot-path probes -------------------------------------------------------- *)

(* The dynamic half of the H00x hot-path lint (DESIGN.md §10): one probe
   per hot entry declared in lib/analysis/hotspec.ml, measured in minor
   words per operation and gated against the committed HOTPATH_budget by
   `lazyctrl_lint --hotpath-report --measured` (`make lint-hotpath`).
   Workloads are steady-state: shared structures are built outside the
   measured closure and the warmup rep absorbs growth, so the counters
   see only the per-operation cost the static rules reason about. *)

(* Statically allocated callback for hp-engine-step: scheduling it
   builds no closure, so the probe isolates the engine's own loop. *)
let hp_nop () = ()

(* hp-engine-step: schedule-and-drain through the bare event loop
   (Engine.step).  One engine across reps — slot and heap growth happen
   during the warmup rep and the measured reps run at steady state. *)
let perf_hp_engine_step () =
  let module Engine = Lazyctrl_sim.Engine in
  let module Time = Lazyctrl_sim.Time in
  let n = perf_scale 200_000 in
  let delays =
    let rng = Lazyctrl_util.Prng.create 37 in
    Array.init n (fun _ -> Time.of_ns (Lazyctrl_util.Prng.int rng 1_000_000))
  in
  let e = Engine.create () in
  let drained = ref 0 in
  let workload () =
    for i = 0 to n - 1 do
      ignore (Engine.schedule e ~after:(Array.unsafe_get delays i) hp_nop)
    done;
    let before = Engine.events_processed e in
    while Engine.step e do () done;
    drained := Engine.events_processed e - before
  in
  perf_record
    (Perf.Measure.run ~name:"hp-engine-step" ~reps:(perf_reps ()) ~ops_per_rep:n
       ~events:(fun () -> !drained)
       workload)

(* hp-edge-datapath: per-delivered-packet cost of the warm lazy
   datapath (Edge_switch.handle_from_host/handle_underlay and everything
   they reach).  One bootstrapped network; each rep starts the same
   tenant flow set at the current simulated time and runs three more
   minutes, so ARP resolution, learning and grouping are amortized away
   by the sizing run and the measured reps ride the L-FIB/G-FIB fast
   path.  This probe deliberately carries the allowlisted H001 residue
   (packet values, flow-table hits) — its budget in HOTPATH_budget is
   nonzero and documents that cost until the int-packed refactor. *)
let perf_hp_edge_datapath () =
  let module Time = Lazyctrl_sim.Time in
  let module Network = Lazyctrl_core.Network in
  let module Placement = Lazyctrl_topo.Placement in
  let module Topology = Lazyctrl_topo.Topology in
  let packets_per_flow = if !quick then 6 else 12 in
  let topo =
    Placement.generate
      ~rng:(Lazyctrl_util.Prng.create 5)
      {
        Placement.n_switches = 8;
        n_tenants = 4;
        tenant_size_min = 6;
        tenant_size_max = 10;
        racks_per_tenant = 2;
        stray_fraction = 0.1;
      }
  in
  let net = Network.create ~mode:Network.Lazy ~topo ~horizon:(Time.of_min 5) () in
  Network.bootstrap net ();
  let cursor = ref (Time.of_sec 10) in
  Network.run net ~until:!cursor;
  let delivered () =
    (Network.switch_stats_sum net).Lazyctrl_switch.Edge_switch.packets_delivered
  in
  let run_rep () =
    List.iter
      (fun tenant ->
        match Topology.tenant_hosts topo tenant with
        | first :: rest ->
            List.iter
              (fun (peer : Lazyctrl_net.Host.t) ->
                Network.start_flow net ~src:first.Lazyctrl_net.Host.id
                  ~dst:peer.id ~bytes:20_000 ~packets:packets_per_flow)
              rest
        | [] -> ())
      (Topology.tenants topo);
    cursor := Time.add !cursor (Time.of_min 3);
    Network.run net ~until:!cursor
  in
  (* One sizing rep warms the datapath and fixes the deterministic
     per-rep op count; Measure's own warmup then re-touches the caches. *)
  let before = delivered () in
  run_rep ();
  let ops = max 1 (delivered () - before) in
  let events = ref 0 in
  perf_record
    (Perf.Measure.run ~name:"hp-edge-datapath"
       ~reps:(if !quick then 3 else 5)
       ~ops_per_rep:ops
       ~events:(fun () -> !events)
       (fun () ->
         run_rep ();
         events := Lazyctrl_sim.Engine.events_processed (Network.engine net)))

(* --- wire codec probes ------------------------------------------------------ *)

(* A representative control-channel message mix for the codec probes
   (DESIGN.md §13), built once outside the measured closures: the
   miss-path round trip (buffered punt, Flow_mod, Buffer_out), a full
   unbuffered punt, and two Proto extension shapes. *)
let wire_mix () =
  let module Ids = Lazyctrl_net.Ids in
  let module Packet = Lazyctrl_net.Packet in
  let module Message = Lazyctrl_openflow.Message in
  let module Proto = Lazyctrl_switch.Proto in
  let host i =
    Lazyctrl_net.Host.make ~id:(Ids.Host_id.of_int i)
      ~tenant:(Ids.Tenant_id.of_int 0)
  in
  let pkt = Packet.data ~src:(host 1) ~dst:(host 2) ~length:1400 () in
  let eth = Packet.eth_of pkt in
  let actions = [ Lazyctrl_openflow.Action.Deliver (Ids.Host_id.of_int 2) ] in
  let keys =
    List.init 8 (fun i ->
        {
          Proto.mac = Lazyctrl_net.Mac.of_host_id (100 + i);
          ip = Lazyctrl_net.Ipv4.of_host_id (100 + i);
          tenant = Ids.Tenant_id.of_int 0;
        })
  in
  [|
    Message.Packet_in { packet = pkt; reason = Message.No_match; buffer_id = 7 };
    Message.Flow_mod
      (Message.Add
         {
           Lazyctrl_openflow.Flow_table.priority = 10;
           ofmatch = Lazyctrl_openflow.Ofmatch.of_eth eth;
           actions;
           idle_timeout = Some (Lazyctrl_sim.Time.of_sec 60);
           hard_timeout = None;
           cookie = 42;
         });
    Message.Buffer_out { buffer_id = 7; actions };
    Message.Packet_in
      { packet = pkt; reason = Message.No_match; buffer_id = Message.no_buffer };
    Message.Extension (Proto.Keepalive { from = Ids.Switch_id.of_int 3 });
    Message.Extension
      (Proto.Lfib_advert
         { origin = Ids.Switch_id.of_int 3; added = keys; removed = []; full = false });
  |]

let perf_wire_encode () =
  let module Wire = Lazyctrl_wire.Wire in
  let module Proto = Lazyctrl_switch.Proto in
  let n = perf_scale 400_000 in
  let mix = wire_mix () in
  let k = Array.length mix in
  let sink = ref 0 in
  let workload () =
    for i = 0 to n - 1 do
      sink :=
        !sink
        + Bytes.length (Wire.encode Proto.wire_ext (Array.unsafe_get mix (i mod k)))
    done
  in
  perf_record
    (Perf.Measure.run ~name:"wire-encode" ~reps:(perf_reps ()) ~ops_per_rep:n
       workload);
  ignore !sink

(* [hot_only] restricts the mix to the two frames the H00x spec declares
   hot — the buffered Packet_in and the Flow_mod — which is what the
   hp-wire-decode budget in HOTPATH_budget prices. *)
let perf_wire_decode ?(name = "wire-decode") ?(hot_only = false) () =
  let module Wire = Lazyctrl_wire.Wire in
  let module Proto = Lazyctrl_switch.Proto in
  let module Message = Lazyctrl_openflow.Message in
  let n = perf_scale 400_000 in
  let mix = wire_mix () in
  let mix = if hot_only then Array.sub mix 0 2 else mix in
  let frames = Array.map (Wire.encode Proto.wire_ext) mix in
  let k = Array.length frames in
  let sink = ref 0 in
  let workload () =
    for i = 0 to n - 1 do
      match Wire.decode Proto.wire_ext (Array.unsafe_get frames (i mod k)) with
      | Message.Packet_in _ | Message.Flow_mod _ -> incr sink
      | _ -> ()
    done
  in
  perf_record
    (Perf.Measure.run ~name ~reps:(perf_reps ()) ~ops_per_rep:n workload);
  ignore !sink

(* buffered-punt: the switch-side miss cycle — park the packet, encode
   and decode the truncated punt, release the slot on the Buffer_out.
   Ops are punts; the encode/decode pair makes the probe price exactly
   what the control channel carries per miss. *)
let perf_buffered_punt () =
  let module Wire = Lazyctrl_wire.Wire in
  let module Proto = Lazyctrl_switch.Proto in
  let module Message = Lazyctrl_openflow.Message in
  let module Buffer_pool = Lazyctrl_openflow.Buffer_pool in
  let module Time = Lazyctrl_sim.Time in
  let n = perf_scale 100_000 in
  let mix = wire_mix () in
  let pkt =
    match mix.(0) with
    | Message.Packet_in { packet; _ } -> packet
    | _ -> assert false
  in
  let pool = Buffer_pool.create ~ttl:(Time.of_sec 1) () in
  let now = Time.of_ns 0 in
  let sink = ref 0 in
  let workload () =
    for _ = 1 to n do
      match Buffer_pool.store pool ~now pkt with
      | None -> ()
      | Some id ->
          let frame =
            Wire.encode Proto.wire_ext
              (Message.Packet_in
                 { packet = pkt; reason = Message.No_match; buffer_id = id })
          in
          (match Wire.decode Proto.wire_ext frame with
          | Message.Packet_in { buffer_id; _ } -> (
              match Buffer_pool.take pool ~now buffer_id with
              | Some _ -> incr sink
              | None -> ())
          | _ -> ())
    done
  in
  perf_record
    (Perf.Measure.run ~name:"buffered-punt" ~reps:(perf_reps ()) ~ops_per_rep:n
       workload);
  ignore !sink

let t_wire_codec () =
  section "Perf: binary wire codec (encode / decode / buffered punt)";
  Printf.printf "%-16s %14s %12s %12s\n" "target" "ops/sec" "ns/op" "B/op";
  perf_wire_encode ();
  perf_wire_decode ();
  perf_buffered_punt ()

let t_hotpath () =
  section
    "Hot-path probes (minor words/op; gated against HOTPATH_budget by `make \
     lint-hotpath`)";
  Printf.printf "%-16s %14s %12s %12s %9s\n" "target" "ops/sec" "ns/op" "B/op"
    "w/op";
  perf_hp_engine_step ();
  perf_bloom_query ~name:"hp-bloom-query" ();
  perf_lfib_lookup ~name:"hp-lfib-lookup" ();
  perf_gfib_probe ~name:"hp-gfib-probe" ();
  perf_wire_decode ~name:"hp-wire-decode" ~hot_only:true ();
  perf_hp_edge_datapath ()

let t_perf () =
  section "Perf regression targets (lib/perf; --json FILE for the report)";
  Printf.printf "%-16s %14s %12s %12s\n" "target" "ops/sec" "ns/op" "B/op";
  perf_engine_event ();
  perf_bloom_query ();
  perf_lfib_lookup ();
  perf_gfib_probe ();
  perf_wire_encode ();
  perf_wire_decode ();
  perf_buffered_punt ();
  perf_packet_replay ();
  perf_shard_replay ();
  perf_cluster_migration ();
  perf_trace_overhead ()

(* Just the end-to-end packet-replay perf target: the cheap smoke entry
   the test suite drives to validate the bench -> JSON -> compare
   pipeline without paying for the full perf sweep. *)
let t_perf_replay () =
  section "Perf: packet-replay only (pipeline smoke target)";
  Printf.printf "%-16s %14s %12s %12s\n" "target" "ops/sec" "ns/op" "B/op";
  perf_packet_replay ()

(* Just the sharded-engine replay probes: the multicore CI leg runs
   this with --exchange-json to produce the artifact without paying
   for the full perf sweep. *)
let t_shard_replay () =
  section "Perf: domain-parallel packet replay (packet-replay-d{1,2,4})";
  Printf.printf "%-16s %14s %12s %12s\n" "target" "ops/sec" "ns/op" "B/op";
  perf_shard_replay ()

(* Just the cluster-migration perf target, runnable on its own. *)
let t_cluster_migration () =
  section "Perf: controller-cluster failover scenario (cluster-migration)";
  Printf.printf "%-16s %14s %12s %12s\n" "target" "ops/sec" "ns/op" "B/op";
  perf_cluster_migration ()

(* Just the tracer-overhead target, runnable on its own. *)
let t_trace_overhead () =
  section "Perf: flight-recorder overhead (disabled vs enabled)";
  Printf.printf "%-16s %14s %12s %12s\n" "target" "ops/sec" "ns/op" "B/op";
  perf_trace_overhead ()

(* --- compare mode ----------------------------------------------------------- *)

let run_compare baseline_path current_path =
  let load path =
    match Perf.Report.load path with
    | Ok results -> results
    | Error msg ->
        Printf.eprintf "compare: %s\n" msg;
        exit 2
  in
  let baseline = load baseline_path in
  let current =
    match Perf.Report.load_doc current_path with
    | Ok doc -> doc
    | Error msg ->
        Printf.eprintf "compare: %s\n" msg;
        exit 2
  in
  (* host_cores comes from the current run: the scaling gate judges the
     machine that produced the numbers under test, not the baseline's. *)
  let outcome =
    Perf.Compare.diff ~host_cores:current.Perf.Report.host_cores ~baseline
      ~current:current.Perf.Report.results ()
  in
  Format.printf "%a" Perf.Compare.pp outcome;
  exit (if Perf.Compare.passed outcome then 0 else 1)

(* --- driver ----------------------------------------------------------------- *)

let targets =
  [
    ("table2", t_table2);
    ("fig6a", t_fig6a);
    ("fig6b", t_fig6b);
    ("fig7", t_fig7);
    ("fig7-bytes", t_fig7_bytes);
    ("fig8", t_fig8);
    ("fig9", t_fig9);
    ("table1", t_table1);
    ("chaos", t_chaos);
    ("coldcache", t_coldcache);
    ("storage", t_storage);
    ("ablate-size", t_ablate_size);
    ("ablate-bloom", t_ablate_bloom);
    ("ablate-appendix", t_ablate_appendix);
    ("micro", t_micro);
    ("perf", t_perf);
    ("wire-codec", t_wire_codec);
    ("hotpath", t_hotpath);
    ("perf-replay", t_perf_replay);
    ("shard-replay", t_shard_replay);
    ("cluster-migration", t_cluster_migration);
    ("trace-overhead", t_trace_overhead);
  ]

let write_json_report path =
  Perf.Report.save path (List.rev !perf_results);
  Printf.printf "wrote %s (%d targets, schema v%d)\n" path
    (List.length !perf_results) Perf.Report.schema_version

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json_path = ref None in
  let exchange_path = ref None in
  let rec strip_flags acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        strip_flags acc rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        strip_flags acc rest
    | [ "--json" ] ->
        Printf.eprintf "--json needs a file path\n";
        exit 2
    | "--exchange-json" :: path :: rest ->
        exchange_path := Some path;
        strip_flags acc rest
    | [ "--exchange-json" ] ->
        Printf.eprintf "--exchange-json needs a file path\n";
        exit 2
    | a :: rest -> strip_flags (a :: acc) rest
  in
  let args = strip_flags [] args in
  (match args with
  | [ "--list" ] ->
      List.iter (fun (name, _) -> print_endline name) targets
  | "compare" :: rest -> (
      match rest with
      | [ baseline; current ] -> run_compare baseline current
      | _ ->
          Printf.eprintf "usage: compare BASELINE.json CURRENT.json\n";
          exit 2)
  | [] ->
      print_endline "LazyCtrl experiment suite (all targets; use --list to see them)";
      List.iter (fun (_, f) -> f ()) targets
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown target %S (use --list)\n" name;
              exit 1)
        names);
  (match !exchange_path with
  | Some path when not (List.is_empty !exchange_stats) ->
      write_exchange_json path
  | Some path ->
      Printf.eprintf
        "--exchange-json %s: no sharded targets ran (include \"shard-replay\" \
         or \"perf\")\n"
        path;
      exit 2
  | None -> ());
  match !json_path with
  | Some path when not (List.is_empty !perf_results) -> write_json_report path
  | Some path ->
      Printf.eprintf
        "--json %s: no perf targets ran (include \"perf\" in the target list)\n"
        path;
      exit 2
  | None -> ()
