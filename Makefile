.PHONY: all build test lint bench clean

all: build

build:
	dune build

# Unit/property tests plus the lazyctrl-lint static-analysis gate.
test:
	dune runtest

# Just the static analysis (also part of `make test`).
lint:
	dune build @lint

bench:
	dune exec bench/main.exe

clean:
	dune clean
