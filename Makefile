.PHONY: all build test lint lint-json bench chaos clean

all: build

build:
	dune build

# Unit/property tests plus the lazyctrl-lint static-analysis gate.
test:
	dune runtest

# Just the static analysis (also part of `make test`).
lint:
	dune build @lint

# Machine-readable lint report (does not fail on findings; inspect the
# "clean" field).  Written to _build/lint-report.json.
lint-json:
	dune build bin/lazyctrl_lint.exe
	./_build/default/bin/lazyctrl_lint.exe --root . --json \
	  > _build/lint-report.json || true
	@echo "wrote _build/lint-report.json"

bench:
	dune exec bench/main.exe

# Seeded chaos scenario + the loss-rate sweep (robustness regression).
chaos:
	dune exec bin/lazyctrl_cli.exe -- chaos
	dune exec bench/main.exe -- --quick chaos

clean:
	dune clean
