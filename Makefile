.PHONY: all build test lint lint-check lint-json lint-sarif lint-ownership lint-hotpath bench bench-json bench-check shard-check chaos chaos-cluster clean

all: build

build:
	dune build

# Unit/property tests plus the lazyctrl-lint static-analysis gate.
test:
	dune runtest

# Just the static analysis (also part of `make test`).
lint:
	dune build @lint

# Machine-readable lint report.  Written to _build/lint-report.json.
# --check makes the exit code track the "clean" field, so a failing tree
# fails the target while still leaving the report behind for upload.
lint-json:
	dune build bin/lazyctrl_lint.exe
	./_build/default/bin/lazyctrl_lint.exe --root . --json --check \
	  > _build/lint-report.json
	@echo "wrote _build/lint-report.json"

# SARIF 2.1.0 report for GitHub code scanning.  Same gating semantics as
# lint-json; the report is written either way.
lint-sarif:
	dune build bin/lazyctrl_lint.exe
	./_build/default/bin/lazyctrl_lint.exe --root . --format sarif --check \
	  > _build/lint-report.sarif
	@echo "wrote _build/lint-report.sarif"

# Shared-state ownership report: every module's ownership class
# (shard-local / shard-crossing / read-only-after-init) next to its
# declared mutable state.  This is the synchronization worklist the
# multicore sharding PR consumes (ROADMAP item 2, DESIGN.md §9).
lint-ownership:
	dune build bin/lazyctrl_lint.exe
	./_build/default/bin/lazyctrl_lint.exe --root . --ownership-report \
	  > _build/ownership-report.json
	@echo "wrote _build/ownership-report.json"

# H00x hot-path cross-validation (DESIGN.md §10): measure every probe
# declared in lib/analysis/hotspec.ml with the bench hotpath targets,
# then judge the static verdict against the measured minor-words-per-op
# and the committed HOTPATH_budget.  The SARIF report comes first
# (non-gating, merged into code scanning by CI); the JSON report gates,
# but is written either way so a failing tree still leaves the artifact.
lint-hotpath:
	dune build bin/lazyctrl_lint.exe bench/main.exe
	./_build/default/bench/main.exe --quick hotpath \
	  --json _build/hotpath-measured.json
	./_build/default/bin/lazyctrl_lint.exe --root . --hotpath-report \
	  --measured _build/hotpath-measured.json --format sarif \
	  > _build/hotpath-report.sarif
	./_build/default/bin/lazyctrl_lint.exe --root . --hotpath-report \
	  --measured _build/hotpath-measured.json --check \
	  > _build/hotpath-report.json
	@echo "wrote _build/hotpath-report.json"

bench:
	dune exec bench/main.exe

# Perf regression targets -> schema-versioned BENCH_lazyctrl.json.
bench-json:
	dune build bench/main.exe
	./_build/default/bench/main.exe --quick perf --json BENCH_lazyctrl.json

# Gate the current tree against the committed baseline: fails (exit 1)
# when any target loses more than 15% ops/sec or disappears.
bench-check: bench-json
	./_build/default/bench/main.exe compare BENCH_baseline.json BENCH_lazyctrl.json

# Domain-parallel determinism gate: the sharded engine must produce
# byte-identical fingerprints double-run and across domain counts
# (the local mirror of the CI multicore matrix).
shard-check:
	dune build bin/lazyctrl_cli.exe
	./_build/default/bin/lazyctrl_cli.exe shard-check --domains 1
	./_build/default/bin/lazyctrl_cli.exe shard-check --domains 2
	./_build/default/bin/lazyctrl_cli.exe shard-check --domains 4

# Seeded chaos scenario + the loss-rate sweep (robustness regression).
chaos:
	dune exec bin/lazyctrl_cli.exe -- chaos
	dune exec bench/main.exe -- --quick chaos

# Controller-cluster chaos: kill/partition cluster members mid-run and
# check re-homing, disjoint ownership and cluster-wide exactly-once.
chaos-cluster:
	dune exec bin/lazyctrl_cli.exe -- chaos --cluster

clean:
	dune clean
