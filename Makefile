.PHONY: all build test lint lint-check lint-json bench bench-json bench-check chaos clean

all: build

build:
	dune build

# Unit/property tests plus the lazyctrl-lint static-analysis gate.
test:
	dune runtest

# Just the static analysis (also part of `make test`).
lint:
	dune build @lint

# Machine-readable lint report.  Written to _build/lint-report.json.
# --check makes the exit code track the "clean" field, so a failing tree
# fails the target while still leaving the report behind for upload.
lint-json:
	dune build bin/lazyctrl_lint.exe
	./_build/default/bin/lazyctrl_lint.exe --root . --json --check \
	  > _build/lint-report.json
	@echo "wrote _build/lint-report.json"

bench:
	dune exec bench/main.exe

# Perf regression targets -> schema-versioned BENCH_lazyctrl.json.
bench-json:
	dune build bench/main.exe
	./_build/default/bench/main.exe --quick perf --json BENCH_lazyctrl.json

# Gate the current tree against the committed baseline: fails (exit 1)
# when any target loses more than 15% ops/sec or disappears.
bench-check: bench-json
	./_build/default/bench/main.exe compare BENCH_baseline.json BENCH_lazyctrl.json

# Seeded chaos scenario + the loss-rate sweep (robustness regression).
chaos:
	dune exec bin/lazyctrl_cli.exe -- chaos
	dune exec bench/main.exe -- --quick chaos

clean:
	dune clean
